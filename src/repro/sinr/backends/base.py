"""The physics-backend protocol: SINR reception evaluation (Equation 1).

A *backend* answers one question -- given a placement, the model parameters
and a set of concurrent transmitters, which listeners decode which message --
while being free to choose its own storage/compute trade-off.  Two backends
ship with the reproduction:

* :class:`~repro.sinr.backends.dense.DenseMatrixBackend` precomputes the full
  ``(n, n)`` received-power (gain) matrix; fastest per round, O(n^2) memory.
* :class:`~repro.sinr.backends.lazy.LazyBlockBackend` computes gain blocks on
  demand from positions with an LRU block cache; O(n) resident memory, which
  unlocks deployments of 100k+ nodes.

The contract is a single primitive, :meth:`PhysicsBackend.gain_block`: the
received-power sub-matrix for arbitrary sender/receiver index arrays.  All
reception logic (:meth:`~PhysicsBackend.receptions` for one round,
:meth:`~PhysicsBackend.receptions_batch` for a whole schedule) is implemented
once in this base class on top of it, so every backend is guaranteed to
realize the *same* physics; the property tests in ``tests/test_backends.py``
additionally pin down their numerical equivalence.

Because the SINR threshold ``beta`` exceeds 1, at most one transmitter can be
decoded by any listener per round, and -- since the SINR of a candidate is
monotone increasing in its own gain for a fixed round -- the decoded sender
is always the one with maximal received power.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..model import NUMERIC_TOLERANCE, SINRParameters


@dataclass(frozen=True)
class Reception:
    """Outcome of one listener in one round."""

    receiver: int
    sender: int
    sinr: float


@dataclass(frozen=True)
class RoundReceptions:
    """Vector-form outcome of one round inside a batched evaluation.

    ``receivers[k]`` decoded ``senders[k]`` with SINR ``sinr[k]``; the arrays
    are index-aligned and sorted by receiver index.  :meth:`as_dict` converts
    to the per-listener :class:`Reception` mapping of the round-by-round API.
    """

    receivers: np.ndarray
    senders: np.ndarray
    sinr: np.ndarray

    def __len__(self) -> int:
        return len(self.receivers)

    def as_dict(self) -> Dict[int, Reception]:
        """The round-by-round ``receptions()`` representation of this round."""
        return {
            int(r): Reception(receiver=int(r), sender=int(s), sinr=float(q))
            for r, s, q in zip(self.receivers, self.senders, self.sinr)
        }


def _empty_round() -> RoundReceptions:
    return RoundReceptions(
        receivers=np.empty(0, dtype=int),
        senders=np.empty(0, dtype=int),
        sinr=np.empty(0, dtype=float),
    )


class PhysicsBackend(ABC):
    """Abstract SINR physics backend over a fixed ``n``-node placement.

    Subclasses implement :meth:`gain_block` (and the shape accessors); the
    reception semantics live here so all backends agree exactly.
    """

    #: Soft cap on the number of gain-matrix elements materialized at once by
    #: :meth:`receptions_batch` (rows x listeners per chunk); keeps peak
    #: memory bounded even for long schedules over large deployments.
    _BATCH_BLOCK_ELEMENTS = 4_000_000

    def __init__(self, params: SINRParameters) -> None:
        self._params = params

    # ------------------------------------------------------------------ #
    # Backend primitive and shape accessors.
    # ------------------------------------------------------------------ #

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of nodes in the placement."""

    @abstractmethod
    def gain_block(self, senders: np.ndarray, receivers: np.ndarray) -> np.ndarray:
        """Received-power sub-matrix ``G[i, j] = gain(senders[i], receivers[j])``.

        Self-pairs (``senders[i] == receivers[j]``) have gain 0; co-located
        distinct pairs are clamped to a huge finite value (reception from a
        co-located node trivially succeeds when it transmits alone).
        """

    @abstractmethod
    def distance(self, a: int, b: int) -> float:
        """Distance between nodes ``a`` and ``b``."""

    @property
    def params(self) -> SINRParameters:
        """The SINR parameters in force."""
        return self._params

    # ------------------------------------------------------------------ #
    # Scalar helpers (generic; backends may override with faster paths).
    # ------------------------------------------------------------------ #

    def gain(self, sender: int, receiver: int) -> float:
        """Received power ``P / d(sender, receiver)^alpha``."""
        block = self.gain_block(np.array([sender], dtype=int), np.array([receiver], dtype=int))
        return float(block[0, 0])

    def sinr(self, sender: int, receiver: int, transmitters: Iterable[int]) -> float:
        """SINR of ``sender`` at ``receiver`` for a given transmitter set."""
        transmitters = set(transmitters)
        if sender not in transmitters:
            raise ValueError("sender must be among the transmitters")
        if receiver == sender:
            return 0.0
        signal = self.gain(sender, receiver)
        others = [w for w in transmitters if w not in (sender, receiver)]
        interference = 0.0
        if others:
            block = self.gain_block(np.array(others, dtype=int), np.array([receiver], dtype=int))
            interference = float(block.sum())
        return float(signal / (self._params.noise + interference))

    def interference_at(self, receiver: int, transmitters: Iterable[int]) -> float:
        """Total interference power at ``receiver`` from ``transmitters``."""
        others = [w for w in transmitters if w != receiver]
        if not others:
            return 0.0
        block = self.gain_block(np.array(others, dtype=int), np.array([receiver], dtype=int))
        return float(block.sum())

    def hears_alone(self, sender: int, receiver: int) -> bool:
        """Whether ``receiver`` hears ``sender`` when nobody else transmits."""
        if sender == receiver:
            return False
        return self.gain(sender, receiver) / self._params.noise >= self._params.beta - NUMERIC_TOLERANCE

    # ------------------------------------------------------------------ #
    # Round evaluation (shared by all backends).
    # ------------------------------------------------------------------ #

    def receptions(
        self,
        transmitters: Sequence[int],
        listeners: Optional[Sequence[int]] = None,
    ) -> Dict[int, Reception]:
        """Compute, per listener, the (unique) successfully decoded sender.

        A node that transmits in a round cannot receive in the same round
        (half-duplex radios, as in the paper).  Listeners default to all
        non-transmitting nodes.
        """
        transmitters = list(dict.fromkeys(int(t) for t in transmitters))
        if not transmitters:
            return {}
        tx = np.array(transmitters, dtype=int)
        tx_set = set(transmitters)
        if listeners is None:
            mask = np.ones(self.size, dtype=bool)
            mask[tx] = False
            rx = np.flatnonzero(mask)
        else:
            listener_ids = [int(v) for v in listeners if int(v) not in tx_set]
            if not listener_ids:
                return {}
            rx = np.array(listener_ids, dtype=int)
        if rx.size == 0:
            return {}

        # gains_sub[i, j] = received power at listener rx[j] from transmitter tx[i]
        gains_sub = self.gain_block(tx, rx)
        total_power = gains_sub.sum(axis=0)
        # A candidate's interference is the total received power minus its own
        # contribution, so its SINR is monotone increasing in its own gain:
        # the (unique, since beta > 1) decodable sender is the strongest one.
        best_idx = np.argmax(gains_sub, axis=0)
        best_gain = gains_sub[best_idx, np.arange(len(rx))]
        best_sinr = best_gain / (self._params.noise + (total_power - best_gain))

        result: Dict[int, Reception] = {}
        threshold = self._params.beta
        for j in np.flatnonzero(best_sinr >= threshold - NUMERIC_TOLERANCE):
            receiver = int(rx[j])
            result[receiver] = Reception(
                receiver=receiver, sender=int(tx[best_idx[j]]), sinr=float(best_sinr[j])
            )
        return result

    def receptions_batch(
        self,
        schedule: Sequence[Sequence[int]],
        listeners: Optional[Sequence[int]] = None,
    ) -> List[RoundReceptions]:
        """Evaluate a whole sequence of transmitter sets in vectorized calls.

        ``schedule[t]`` is the transmitter index set of round ``t``; the same
        ``listeners`` apply to every round (default: all nodes), except that a
        round's own transmitters never receive (half-duplex).  Equivalent to
        calling :meth:`receptions` once per round -- the property tests assert
        exactly that -- but materializes the gain rows of many rounds in one
        :meth:`gain_block` call and skips all per-listener Python objects,
        which is what makes schedule-driven executions fast.

        Returns one :class:`RoundReceptions` per round, in order.
        """
        norm_rounds = [list(dict.fromkeys(int(t) for t in r)) for r in schedule]
        if listeners is None:
            rx = np.arange(self.size)
        else:
            rx = np.array(list(dict.fromkeys(int(v) for v in listeners)), dtype=int)

        results: List[RoundReceptions] = [_empty_round()] * len(norm_rounds)
        if rx.size == 0:
            return results

        noise = self._params.noise
        threshold = self._params.beta - NUMERIC_TOLERANCE
        cols = np.arange(rx.size)
        rx_pos = {int(v): j for j, v in enumerate(rx)}

        # Chunk rounds so that (distinct transmitters per chunk) x (listeners)
        # stays within the block budget; one gain_block call per chunk.
        max_rows = max(1, self._BATCH_BLOCK_ELEMENTS // rx.size)
        start = 0
        while start < len(norm_rounds):
            union: Dict[int, int] = {}
            end = start
            while end < len(norm_rounds):
                new = [t for t in norm_rounds[end] if t not in union]
                if union and len(union) + len(new) > max_rows:
                    break
                for t in new:
                    union[t] = len(union)
                end += 1
            if not union:
                start = end
                continue

            block = self.gain_block(np.fromiter(union, dtype=int, count=len(union)), rx)
            for t in range(start, end):
                tx_list = norm_rounds[t]
                if not tx_list:
                    continue
                tx_arr = np.fromiter(tx_list, dtype=int, count=len(tx_list))
                rows = np.fromiter((union[v] for v in tx_list), dtype=int, count=len(tx_list))
                gains_sub = block[rows]
                total_power = gains_sub.sum(axis=0)
                # Strongest transmitter == best SINR (see receptions()).
                best_idx = np.argmax(gains_sub, axis=0)
                best_gain = gains_sub[best_idx, cols]
                best_sinr = best_gain / (noise + (total_power - best_gain))
                ok = best_sinr >= threshold
                # Half-duplex: a round's transmitters never receive in it.
                for v in tx_list:
                    j = rx_pos.get(v)
                    if j is not None:
                        ok[j] = False
                picked = np.flatnonzero(ok)
                results[t] = RoundReceptions(
                    receivers=rx[picked],
                    senders=tx_arr[best_idx[picked]],
                    sinr=best_sinr[picked],
                )
            start = end
        return results

    def reception_matrix(self, transmitters: Sequence[int]) -> np.ndarray:
        """Boolean matrix ``M[i, j]``: listener ``j`` decodes ``transmitters[i]``.

        Mostly useful for analysis and tests; the simulator itself uses
        :meth:`receptions`.
        """
        transmitters = list(dict.fromkeys(int(t) for t in transmitters))
        matrix = np.zeros((len(transmitters), self.size), dtype=bool)
        outcome = self.receptions(transmitters)
        index_of = {t: i for i, t in enumerate(transmitters)}
        for receiver, reception in outcome.items():
            matrix[index_of[reception.sender], receiver] = True
        return matrix
