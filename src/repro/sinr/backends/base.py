"""The physics-backend protocol: SINR reception evaluation (Equation 1).

A *backend* answers one question -- given a placement, the model parameters
and a set of concurrent transmitters, which listeners decode which message --
while being free to choose its own storage/compute trade-off.  Two backends
ship with the reproduction:

* :class:`~repro.sinr.backends.dense.DenseMatrixBackend` precomputes the full
  ``(n, n)`` received-power (gain) matrix; fastest per round, O(n^2) memory.
* :class:`~repro.sinr.backends.lazy.LazyBlockBackend` computes gain blocks on
  demand from positions with an LRU block cache; O(n) resident memory, which
  unlocks deployments of 100k+ nodes.

The contract is a single primitive, :meth:`PhysicsBackend.gain_block`: the
received-power sub-matrix for arbitrary sender/receiver index arrays.  All
reception logic (:meth:`~PhysicsBackend.receptions` for one round,
:meth:`~PhysicsBackend.receptions_batch` for a whole schedule) is implemented
once in this base class on top of it, so every backend is guaranteed to
realize the *same* physics; the property tests in ``tests/test_backends.py``
additionally pin down their numerical equivalence.

Because the SINR threshold ``beta`` exceeds 1, at most one transmitter can be
decoded by any listener per round, and -- since the SINR of a candidate is
monotone increasing in its own gain for a fixed round -- the decoded sender
is always the one with maximal received power.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..model import NUMERIC_TOLERANCE, SINRParameters

#: Gain assigned to co-located *distinct* node pairs (zero distance would give
#: infinite received power).  Deliberately independent of the network size so
#: that incremental mutations (add/remove/move) leave exactly the same values
#: a fresh backend over the new placement would compute; the 2^32 headroom
#: keeps any realistic interference sum finite.
COLOCATED_GAIN = float(np.finfo(float).max / 2**32)


@dataclass(frozen=True)
class Reception:
    """Outcome of one listener in one round."""

    receiver: int
    sender: int
    sinr: float


@dataclass(frozen=True)
class RoundReceptions:
    """Vector-form outcome of one round inside a batched evaluation.

    ``receivers[k]`` decoded ``senders[k]`` with SINR ``sinr[k]``; the arrays
    are index-aligned and sorted by receiver index.  :meth:`as_dict` converts
    to the per-listener :class:`Reception` mapping of the round-by-round API.
    """

    receivers: np.ndarray
    senders: np.ndarray
    sinr: np.ndarray

    def __len__(self) -> int:
        return len(self.receivers)

    def as_dict(self) -> Dict[int, Reception]:
        """The round-by-round ``receptions()`` representation of this round."""
        return {
            int(r): Reception(receiver=int(r), sender=int(s), sinr=float(q))
            for r, s, q in zip(self.receivers, self.senders, self.sinr)
        }


def _empty_round() -> RoundReceptions:
    return RoundReceptions(
        receivers=np.empty(0, dtype=int),
        senders=np.empty(0, dtype=int),
        sinr=np.empty(0, dtype=float),
    )


@dataclass(frozen=True)
class DeliveryTable:
    """Columnar outcome of a whole schedule: one row per successful reception.

    The arrays are index-aligned and sorted by ``round_ids`` (round-major);
    within a round, receivers appear in listener-array order.  This is the
    native output of :meth:`PhysicsBackend.receptions_table` and what the
    simulator's columnar schedule path consumes directly -- no per-round
    Python containers.
    """

    num_rounds: int
    round_ids: np.ndarray
    receivers: np.ndarray
    senders: np.ndarray
    sinr: np.ndarray

    def __len__(self) -> int:
        return len(self.round_ids)

    def split_rounds(self) -> List[RoundReceptions]:
        """Per-round :class:`RoundReceptions` views (legacy batch shape)."""
        bounds = np.searchsorted(self.round_ids, np.arange(self.num_rounds + 1))
        out: List[RoundReceptions] = []
        for t in range(self.num_rounds):
            lo, hi = bounds[t], bounds[t + 1]
            if lo == hi:
                out.append(_empty_round())
            else:
                out.append(
                    RoundReceptions(
                        receivers=self.receivers[lo:hi],
                        senders=self.senders[lo:hi],
                        sinr=self.sinr[lo:hi],
                    )
                )
        return out


def _empty_table(num_rounds: int) -> DeliveryTable:
    return DeliveryTable(
        num_rounds=num_rounds,
        round_ids=np.empty(0, dtype=np.int64),
        receivers=np.empty(0, dtype=np.int64),
        senders=np.empty(0, dtype=np.int64),
        sinr=np.empty(0, dtype=float),
    )


class PhysicsBackend(ABC):
    """Abstract SINR physics backend over a fixed ``n``-node placement.

    Subclasses implement :meth:`gain_block` (and the shape accessors); the
    reception semantics live here so all backends agree exactly.
    """

    #: Soft cap on the number of gain-matrix elements materialized at once by
    #: :meth:`receptions_batch` (rows x listeners per chunk); keeps peak
    #: memory bounded even for long schedules over large deployments.
    _BATCH_BLOCK_ELEMENTS = 4_000_000

    def __init__(self, params: SINRParameters) -> None:
        self._params = params

    # ------------------------------------------------------------------ #
    # Backend primitive and shape accessors.
    # ------------------------------------------------------------------ #

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of nodes in the placement."""

    @abstractmethod
    def gain_block(self, senders: np.ndarray, receivers: np.ndarray) -> np.ndarray:
        """Received-power sub-matrix ``G[i, j] = gain(senders[i], receivers[j])``.

        Self-pairs (``senders[i] == receivers[j]``) have gain 0; co-located
        distinct pairs are clamped to a huge finite value (reception from a
        co-located node trivially succeeds when it transmits alone).
        """

    @abstractmethod
    def distance(self, a: int, b: int) -> float:
        """Distance between nodes ``a`` and ``b``."""

    @property
    def params(self) -> SINRParameters:
        """The SINR parameters in force."""
        return self._params

    # ------------------------------------------------------------------ #
    # Incremental placement mutation (dynamic networks).
    # ------------------------------------------------------------------ #

    def update_positions(self, indices: np.ndarray, new_xy: np.ndarray) -> None:
        """Move the nodes at ``indices`` to coordinates ``new_xy``, in place.

        Backends update only the state the move actually touches (gain
        rows/columns of the moved nodes, cached rank tables, cached rows)
        instead of rebuilding from scratch; after the call the backend is
        indistinguishable from one freshly constructed over the new
        placement (property-tested in ``tests/test_incremental_physics.py``).
        ``indices`` must be duplicate-free.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support incremental position updates"
        )

    def add_nodes(self, new_xy: np.ndarray) -> None:
        """Append nodes at coordinates ``new_xy``; they take the next dense indices."""
        raise NotImplementedError(f"{type(self).__name__} does not support adding nodes")

    def remove_nodes(self, indices: np.ndarray) -> None:
        """Delete the nodes at ``indices``; remaining nodes are re-indexed compactly.

        The surviving nodes keep their relative order, so dense index ``j``
        after the call refers to the ``j``-th surviving node.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support removing nodes")

    @staticmethod
    def _check_moves(size: int, indices: np.ndarray, new_xy: np.ndarray) -> tuple:
        """Validate and normalize an ``update_positions`` request."""
        indices = np.asarray(indices, dtype=np.int64).ravel()
        new_xy = np.asarray(new_xy, dtype=float).reshape(-1, 2)
        if len(indices) != len(new_xy):
            raise ValueError("indices and new_xy must have matching lengths")
        if indices.size:
            if indices.min() < 0 or indices.max() >= size:
                raise ValueError("node index out of range")
            if len(np.unique(indices)) != len(indices):
                raise ValueError("indices must be duplicate-free")
        return indices, new_xy

    # ------------------------------------------------------------------ #
    # Scalar helpers (generic; backends may override with faster paths).
    # ------------------------------------------------------------------ #

    def gain(self, sender: int, receiver: int) -> float:
        """Received power ``P / d(sender, receiver)^alpha``."""
        block = self.gain_block(np.array([sender], dtype=int), np.array([receiver], dtype=int))
        return float(block[0, 0])

    def sinr(self, sender: int, receiver: int, transmitters: Iterable[int]) -> float:
        """SINR of ``sender`` at ``receiver`` for a given transmitter set."""
        transmitters = set(transmitters)
        if sender not in transmitters:
            raise ValueError("sender must be among the transmitters")
        if receiver == sender:
            return 0.0
        signal = self.gain(sender, receiver)
        others = [w for w in transmitters if w not in (sender, receiver)]
        interference = 0.0
        if others:
            block = self.gain_block(np.array(others, dtype=int), np.array([receiver], dtype=int))
            interference = float(block.sum())
        return float(signal / (self._params.noise + interference))

    def interference_at(self, receiver: int, transmitters: Iterable[int]) -> float:
        """Total interference power at ``receiver`` from ``transmitters``."""
        others = [w for w in transmitters if w != receiver]
        if not others:
            return 0.0
        block = self.gain_block(np.array(others, dtype=int), np.array([receiver], dtype=int))
        return float(block.sum())

    def hears_alone(self, sender: int, receiver: int) -> bool:
        """Whether ``receiver`` hears ``sender`` when nobody else transmits."""
        if sender == receiver:
            return False
        return self.gain(sender, receiver) / self._params.noise >= self._params.beta - NUMERIC_TOLERANCE

    # ------------------------------------------------------------------ #
    # Round evaluation (shared by all backends).
    # ------------------------------------------------------------------ #

    def receptions(
        self,
        transmitters: Sequence[int],
        listeners: Optional[Sequence[int]] = None,
    ) -> Dict[int, Reception]:
        """Compute, per listener, the (unique) successfully decoded sender.

        A node that transmits in a round cannot receive in the same round
        (half-duplex radios, as in the paper).  Listeners default to all
        non-transmitting nodes.
        """
        transmitters = list(dict.fromkeys(int(t) for t in transmitters))
        if not transmitters:
            return {}
        tx = np.array(transmitters, dtype=int)
        tx_set = set(transmitters)
        if listeners is None:
            mask = np.ones(self.size, dtype=bool)
            mask[tx] = False
            rx = np.flatnonzero(mask)
        else:
            listener_ids = [int(v) for v in listeners if int(v) not in tx_set]
            if not listener_ids:
                return {}
            rx = np.array(listener_ids, dtype=int)
        if rx.size == 0:
            return {}

        # gains_sub[i, j] = received power at listener rx[j] from transmitter tx[i]
        gains_sub = self.gain_block(tx, rx)
        total_power = gains_sub.sum(axis=0)
        # A candidate's interference is the total received power minus its own
        # contribution, so its SINR is monotone increasing in its own gain:
        # the (unique, since beta > 1) decodable sender is the strongest one.
        best_idx = np.argmax(gains_sub, axis=0)
        best_gain = gains_sub[best_idx, np.arange(len(rx))]
        best_sinr = best_gain / (self._params.noise + (total_power - best_gain))

        result: Dict[int, Reception] = {}
        threshold = self._params.beta
        for j in np.flatnonzero(best_sinr >= threshold - NUMERIC_TOLERANCE):
            receiver = int(rx[j])
            result[receiver] = Reception(
                receiver=receiver, sender=int(tx[best_idx[j]]), sinr=float(best_sinr[j])
            )
        return result

    def _normalize_listeners(self, listeners: Optional[Sequence[int]]) -> np.ndarray:
        """Listener index array: defaults to all nodes, dedups preserving order."""
        if listeners is None:
            return np.arange(self.size)
        if isinstance(listeners, np.ndarray) and listeners.dtype.kind in "iu":
            rx = np.ascontiguousarray(listeners, dtype=np.int64)
            if rx.size > 1 and not np.all(np.diff(rx) > 0):
                # Not strictly increasing: may contain duplicates.  Keep the
                # first occurrence of each listener, in the given order.
                _, first = np.unique(rx, return_index=True)
                if len(first) != len(rx):
                    rx = rx[np.sort(first)]
            return rx
        return np.array(list(dict.fromkeys(int(v) for v in listeners)), dtype=np.int64)

    def receptions_table(
        self,
        tx_indptr: np.ndarray,
        tx_members: np.ndarray,
        listeners: Optional[Sequence[int]] = None,
        *,
        round_batch: Optional[object] = None,
    ) -> DeliveryTable:
        """Evaluate a whole CSR schedule of transmitter sets, columnarly.

        ``tx_members[tx_indptr[t]:tx_indptr[t + 1]]`` are the transmitter
        indices of round ``t`` (duplicate-free within a round).  The same
        ``listeners`` apply to every round (default: all nodes), except that
        a round's own transmitters never receive (half-duplex).  Semantically
        equivalent to calling :meth:`receptions` once per round -- the
        property tests assert exactly that -- but rounds are evaluated in
        chunked vectorized passes with no per-round Python containers, and
        the result is a single columnar :class:`DeliveryTable`.

        ``round_batch`` is a performance hint -- how many consecutive rounds
        a backend may fuse into one composite evaluation (an ``int >= 1``,
        ``"auto"``, or ``None`` for the backend's configured default).  It
        never changes results; backends without a batched driver (this
        generic path, dense, lazy) accept and ignore it so callers can
        thread the knob uniformly.

        Subclasses may override with a faster representation-specific path
        (see the dense backend's gemm/top-k implementation); the generic
        implementation only relies on :meth:`gain_block`.
        """
        del round_batch  # accepted for signature uniformity; no batched driver here
        tx_indptr = np.ascontiguousarray(tx_indptr, dtype=np.int64)
        tx_members = np.ascontiguousarray(tx_members, dtype=np.int64)
        num_rounds = len(tx_indptr) - 1
        rx = self._normalize_listeners(listeners)
        if rx.size == 0 or num_rounds == 0 or len(tx_members) == 0:
            return _empty_table(num_rounds)

        noise = self._params.noise
        threshold = self._params.beta - NUMERIC_TOLERANCE
        pos_in_rx = np.full(self.size, -1, dtype=np.int64)
        pos_in_rx[rx] = np.arange(rx.size)

        out_rounds: List[np.ndarray] = []
        out_receivers: List[np.ndarray] = []
        out_senders: List[np.ndarray] = []
        out_sinr: List[np.ndarray] = []

        # Chunk rounds so that (chunk transmitter entries) x (listeners)
        # stays within the block budget; one gain_block call per chunk.
        max_rows = max(1, self._BATCH_BLOCK_ELEMENTS // rx.size)
        counts = np.diff(tx_indptr)
        start = 0
        while start < num_rounds:
            end = start + 1
            taken = int(counts[start])
            while end < num_rounds and taken + counts[end] <= max_rows:
                taken += int(counts[end])
                end += 1
            entries = tx_members[tx_indptr[start] : tx_indptr[end]]
            if entries.size:
                uniq, inv = np.unique(entries, return_inverse=True)
                block = self.gain_block(uniq, rx)
                base = int(tx_indptr[start])
                for t in range(start, end):
                    lo, hi = int(tx_indptr[t]) - base, int(tx_indptr[t + 1]) - base
                    if lo == hi:
                        continue
                    gains_sub = block[inv[lo:hi]]
                    total_power = gains_sub.sum(axis=0)
                    best_gain = gains_sub.max(axis=0)
                    # Strongest transmitter == best SINR (see receptions()).
                    best_sinr = best_gain / (noise + (total_power - best_gain))
                    ok = best_sinr >= threshold
                    # Half-duplex: a round's transmitters never receive in it.
                    tx_slice = entries[lo:hi]
                    own = pos_in_rx[tx_slice]
                    ok[own[own >= 0]] = False
                    picked = np.flatnonzero(ok)
                    if not picked.size:
                        continue
                    winners = gains_sub[:, picked].argmax(axis=0)
                    out_rounds.append(np.full(picked.size, t, dtype=np.int64))
                    out_receivers.append(rx[picked])
                    out_senders.append(tx_slice[winners])
                    out_sinr.append(best_sinr[picked])
            start = end

        if not out_rounds:
            return _empty_table(num_rounds)
        return DeliveryTable(
            num_rounds=num_rounds,
            round_ids=np.concatenate(out_rounds),
            receivers=np.concatenate(out_receivers),
            senders=np.concatenate(out_senders),
            sinr=np.concatenate(out_sinr),
        )

    def receptions_batch(
        self,
        schedule: Sequence[Sequence[int]],
        listeners: Optional[Sequence[int]] = None,
    ) -> List[RoundReceptions]:
        """Evaluate a whole sequence of transmitter sets in vectorized calls.

        ``schedule[t]`` is the transmitter index set of round ``t``; the same
        ``listeners`` apply to every round (default: all nodes), except that a
        round's own transmitters never receive (half-duplex).  Equivalent to
        calling :meth:`receptions` once per round -- the property tests assert
        exactly that.  This is a thin compatibility wrapper over the columnar
        :meth:`receptions_table`; new code should prefer the table API.

        Returns one :class:`RoundReceptions` per round, in order.
        """
        norm_rounds = [
            np.fromiter(dict.fromkeys(int(t) for t in r), dtype=np.int64)
            for r in schedule
        ]
        indptr = np.zeros(len(norm_rounds) + 1, dtype=np.int64)
        np.cumsum([len(r) for r in norm_rounds], out=indptr[1:])
        members = (
            np.concatenate(norm_rounds) if norm_rounds else np.empty(0, dtype=np.int64)
        )
        rx = self._normalize_listeners(listeners)
        table = self.receptions_table(indptr, members, listeners=rx)
        return table.split_rounds()

    def reception_matrix(self, transmitters: Sequence[int]) -> np.ndarray:
        """Boolean matrix ``M[i, j]``: listener ``j`` decodes ``transmitters[i]``.

        Mostly useful for analysis and tests; the simulator itself uses
        :meth:`receptions`.
        """
        transmitters = list(dict.fromkeys(int(t) for t in transmitters))
        matrix = np.zeros((len(transmitters), self.size), dtype=bool)
        outcome = self.receptions(transmitters)
        index_of = {t: i for i, t in enumerate(transmitters)}
        for receiver, reception in outcome.items():
            matrix[index_of[reception.sender], receiver] = True
        return matrix
