"""Spatially-indexed physics backend: certified near/far interference split.

Both historical backends charge every listener for all ``n`` potential
interferers each round -- dense through an O(n^2) gain matrix, lazy through
on-demand full rows.  Physical SINR gain decays polynomially with distance
(``P / d^alpha``, ``alpha > 2``), so almost all of that work goes into
contributions that cannot change any reception decision.  This backend
exploits that structure without ever approximating a result:

* Positions are bucketed into a **uniform grid** whose cell side is derived
  from the model's transmission range (and therefore from the path-loss
  exponent): any transmitter outside the 3x3 cell block around a listener
  is provably too far to be decoded on its own.
* Each round, only listeners with a transmitter in their 3x3 block are
  *candidates*; everyone else is **certified-rejected** by the signal upper
  bound alone.  Per-round cost is thus O(active area), independent of
  ``n``.
* A candidate's SINR denominator is split into an **exact near-field sum**
  over the cells within the current ring and a **far-field lower bound**
  aggregated per occupied tile (tile transmit power over the tile's
  farthest-corner distance).  A ring-expansion loop widens the exact region
  ring by ring, re-testing a certified rejection bound each time.
* Listeners whose decision the bounds cannot certify -- in practice the
  actual receivers plus a thin threshold-marginal shell -- **fall back to
  exact summation** over the full transmitter set, evaluated with the same
  formulas as the dense backend.

The certificates are one-sided and sound: a listener is only dropped when
an *upper bound* on its best achievable SINR is below ``beta -
NUMERIC_TOLERANCE`` (exactly the dense backend's acceptance threshold), and
every listener that survives the bounds is evaluated exactly.  Delivered
events -- receiver, decoded sender and reported SINR -- therefore match the
dense backend event for event (up to the usual last-ulp float-summation
differences between backends); ``tests/test_spatial_backend.py`` pins the
equivalence on randomized deployments, including incremental mutations.

The per-round hot loops (pair gains, near-field segment reduction, exact
strongest-transmitter resolution) run through the optional compiled kernels
of :mod:`repro.sinr.backends._kernels` (Numba ``@njit`` when available,
pure NumPy otherwise).

**The batched round driver.**  A full algorithm execution issues ~10^5
schedule rounds, and at 100k+ nodes each round's *physics* is cheap -- the
cost floor is the fixed NumPy call overhead per round (argsort /
searchsorted / unique on small arrays).  :meth:`receptions_table` therefore
fuses up to ``round_batch`` consecutive CSR rounds into one composite-keyed
evaluation (:meth:`_batch_core`): transmitters are keyed by ``round x
tile``, candidates become unique ``(round, listener)`` pairs, and every
stage -- the 3x3 join, the ring shells, the grouped far-field bound and the
segmented exact fallback -- runs once per batch instead of once per round.
The batched and per-round paths share the same grouped reduction helpers
(sequential per-segment accumulation, chunked only at segment boundaries),
which makes them **bit-identical**: fusing rounds changes neither events
nor reported SINR values, and splitting a schedule at any round boundary is
associative.  ``tests/test_backend_differential.py`` pins both properties
across backends, schedule families, batch sizes and kernel variants.

Soundness of the certificates (all bounds are cell-rectangle bounds, valid
for any point positions inside the cells):

* two nodes in tiles at Chebyshev tile-distance ``c >= 1`` are at least
  ``(c - 1) * cell`` apart, hence any transmitter outside a listener's
  ring-``r`` block contributes gain at most ``P / ((r - 1) * cell)^alpha``
  (for ``r >= 2``) and, outside the 3x3 block, at most the constant
  ``P / cell^alpha`` -- which the constructor guarantees is below the
  solo-decoding threshold ``(beta - NUMERIC_TOLERANCE) * noise``;
* a far tile at tile offset ``(di, dj)`` holds its ``m`` transmitters
  within ``hypot(di + 1, dj + 1) * cell`` of every point of the listener's
  cell, so ``m * P / d_max^alpha`` lower-bounds its true interference
  contribution;
* consequently, for any candidate with near-field maximum ``g``, the true
  SINR is at most ``g / (noise + near_sum + far_lower - g)`` -- the
  quantity the ring loop drives below threshold.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..model import NUMERIC_TOLERANCE, SINRParameters
from . import _kernels
from .base import COLOCATED_GAIN, DeliveryTable, PhysicsBackend, Reception, _empty_table

#: Default cell side, as a multiple of the transmission range.  The margin
#: over 1.0 guarantees that any transmitter beyond the 3x3 near block (at
#: distance >= cell) is strictly below the solo-decoding threshold, so the
#: signal-only rejection certificate is sound.
_CELL_MARGIN = 1.0 + 1.0 / 16.0

#: Hard floor on the cell side (relative to the transmission range) below
#: which the signal certificate would no longer clear ``NUMERIC_TOLERANCE``.
_MIN_CELL_FACTOR = 1.0 + 1e-6

#: Bound on the total number of grid cells, as a multiple of ``n``.  Very
#: sparse bounding boxes (a handful of nodes spread over a huge area) grow
#: the cell side instead of materializing an empty mega-grid; larger cells
#: only loosen performance, never correctness.
_CELLS_PER_NODE = 8

#: Soft cap on (listeners x occupied tiles) elements materialized at once
#: by the far-field aggregation (chunked beyond this).
_FAR_BLOCK_ELEMENTS = 4_000_000

#: Target number of schedule entries (transmitter slots) per fused batch
#: under ``round_batch="auto"``: enough to amortize the per-call NumPy
#: floors, small enough that the composite join temporaries stay cache-warm.
_AUTO_BATCH_TARGET = 4096

#: Ceiling on the fused batch size (``"auto"`` never exceeds it; explicit
#: integers may).  Keeps composite keys comfortably inside int64 and the
#: per-batch candidate set bounded on sparse schedules.
_MAX_ROUND_BATCH = 64


def _csr_take(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], starts[i] + counts[i])`` ranges."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.cumsum(counts) - counts
    return np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)


def _validate_round_batch(value: object) -> object:
    """Normalize a ``round_batch`` knob value to ``"auto"`` or an int >= 1."""
    if isinstance(value, str):
        if value == "auto":
            return "auto"
        raise ValueError(f"round_batch must be an int >= 1 or 'auto', got {value!r}")
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"round_batch must be an int >= 1 or 'auto', got {value!r}")
    if value < 1:
        raise ValueError(f"round_batch must be an int >= 1 or 'auto', got {value!r}")
    return int(value)


class SpatialGridBackend(PhysicsBackend):
    """SINR physics over a uniform spatial grid with certified far-field bounds.

    Parameters
    ----------
    positions:
        ``(n, 2)`` array of node coordinates.  Metric-only (distance matrix)
        construction is not supported: the grid needs coordinates.
    params:
        The :class:`~repro.sinr.model.SINRParameters` of the environment.
    cell_size:
        Side of the grid cells.  Defaults to ``transmission_range * 17/16``;
        must be at least ``transmission_range * (1 + 1e-6)`` so the
        out-of-block signal certificate stays sound (a :class:`ValueError`
        guards the floor).  The constructor may *grow* the cell beyond the
        request to keep the total cell count within ``8 n``.
    max_ring:
        Number of exact near-field rings the certification loop expands
        through before falling back to exact summation (>= 1; default 2,
        i.e. a 5x5 exact block at the widest).
    round_batch:
        Default number of consecutive schedule rounds
        :meth:`receptions_table` fuses into one composite-keyed evaluation:
        an ``int >= 1`` or ``"auto"`` (the default), which sizes batches to
        ~4096 schedule entries, capped at 64 rounds.  Purely a performance
        knob -- results are bit-identical for every value (``1`` disables
        fusing and runs the per-round core).  Individual
        ``receptions_table`` calls may override it.
    """

    def __init__(
        self,
        positions: np.ndarray,
        params: SINRParameters,
        cell_size: Optional[float] = None,
        max_ring: int = 2,
        round_batch: object = "auto",
    ) -> None:
        super().__init__(params)
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError("positions must be an (n, 2) array")
        if max_ring < 1:
            raise ValueError(f"max_ring must be at least 1, got {max_ring}")
        floor = params.transmission_range * _MIN_CELL_FACTOR
        if cell_size is None:
            cell_size = params.transmission_range * _CELL_MARGIN
        elif cell_size < floor:
            raise ValueError(
                f"cell_size {cell_size!r} is below the certified minimum {floor!r} "
                "(transmitters outside the 3x3 near block could still be decodable)"
            )
        self._positions = positions.copy()
        self._n = len(positions)
        self._base_cell = float(cell_size)
        self._max_ring = int(max_ring)
        self._round_batch = _validate_round_batch(round_batch)
        # Grid state, built lazily (and invalidated by mutations that move
        # nodes outside the current bounding box).
        self._cell: float = 0.0
        self._origin: Optional[np.ndarray] = None
        self._shape: Optional[Tuple[int, int]] = None
        self._cell_of: Optional[np.ndarray] = None
        # Bumped on every mutation of positions / cell assignments; guards
        # the cached listener bucketing (see _bucket_listeners).
        self._grid_version = 0
        self._listener_cache: Optional[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = None
        # Cumulative certification counters (across all queries since
        # construction -- the existing observability contract).
        self._stats = {
            "rounds": 0,
            "listeners": 0,
            "candidates": 0,
            "pruned_signal": 0,
            "pruned_near": 0,
            "pruned_far": 0,
            "exact": 0,
            "near_pairs": 0,
        }
        # Batch-driver counters, reset at the start of every
        # receptions_table call so they describe exactly the last run:
        # rounds_fused + rounds_single + rounds_empty == num_rounds.
        self._batch_stats = {
            "round_batch": 0,
            "batches": 0,
            "rounds_fused": 0,
            "rounds_single": 0,
            "rounds_empty": 0,
            "join_entries": 0,
        }

    # ------------------------------------------------------------------ #
    # Shape accessors and the gain primitive.
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Number of nodes in the placement."""
        return self._n

    @property
    def positions(self) -> np.ndarray:
        """Node coordinates (read-only view)."""
        view = self._positions.view()
        view.flags.writeable = False
        return view

    @property
    def distances(self) -> np.ndarray:
        """Unavailable: materializing the O(n^2) matrix is what this backend avoids."""
        raise ValueError(
            "SpatialGridBackend does not materialize the pairwise-distance matrix; "
            "use distance(a, b) for point queries or the dense backend"
        )

    def distance(self, a: int, b: int) -> float:
        """Distance between nodes ``a`` and ``b`` (computed from positions)."""
        diff = self._positions[a] - self._positions[b]
        return float(np.sqrt(diff[0] * diff[0] + diff[1] * diff[1]))

    def gain_block(self, senders: np.ndarray, receivers: np.ndarray) -> np.ndarray:
        """Gain sub-matrix computed straight from positions (dense conventions)."""
        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        diff = self._positions[senders][:, None, :] - self._positions[receivers][None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        with np.errstate(divide="ignore"):
            gains = self._params.power / np.power(dist, self._params.alpha)
        gains[senders[:, None] == receivers[None, :]] = 0.0
        gains[np.isinf(gains)] = COLOCATED_GAIN
        return gains

    def grid_info(self) -> Dict[str, object]:
        """Grid geometry, certification counters and batch-driver counters.

        Certification counters (``rounds`` .. ``near_pairs``) are cumulative
        across the backend's lifetime; the batch counters (``round_batch``,
        ``batches``, ``rounds_fused``, ``rounds_single``, ``rounds_empty``,
        ``join_entries``) describe only the most recent
        :meth:`receptions_table` call and satisfy ``rounds_fused +
        rounds_single + rounds_empty == num_rounds`` for that call.
        ``kernel_backend`` reports whether the compiled (``"numba"``) or
        pure-NumPy kernels are dispatching.
        """
        self._ensure_grid()
        ncx, ncy = self._shape  # type: ignore[misc]
        info: Dict[str, object] = {
            "cell_size": self._cell,
            "cells_x": ncx,
            "cells_y": ncy,
            "max_ring": self._max_ring,
            "kernel_backend": _kernels.KERNEL_BACKEND,
        }
        info.update(self._stats)
        info.update(self._batch_stats)
        return info

    # ------------------------------------------------------------------ #
    # Grid construction and cell (re-)bucketing.
    # ------------------------------------------------------------------ #

    def _build_grid(self) -> None:
        """Anchor the grid on the current bounding box and bucket every node.

        The cell side starts at the configured base and doubles until the
        total cell count fits the ``8 n`` budget, so sparse mega-areas never
        materialize empty index structures.  Growing cells is always sound:
        every certificate only relies on the cell side being *at least* the
        certified minimum.
        """
        pos = self._positions
        mins = pos.min(axis=0)
        span = pos.max(axis=0) - mins
        cell = self._base_cell
        budget = max(1024, _CELLS_PER_NODE * self._n)
        while (int(span[0] / cell) + 1) * (int(span[1] / cell) + 1) > budget:
            cell *= 2.0
        self._cell = cell
        self._origin = mins
        ncx = int(span[0] / cell) + 1
        ncy = int(span[1] / cell) + 1
        self._shape = (ncx, ncy)
        self._cell_of = self._cells_for(pos)
        self._grid_version += 1
        # Per-tile-offset far-field contribution: gain at the farthest-corner
        # distance of a tile |di|, |dj| cells away.  One table per grid, so
        # the far bound is pure gathers (no transcendental per pair).
        with np.errstate(divide="ignore"):
            self._far_gain = self._params.power / np.power(
                np.hypot(
                    np.arange(1, ncx + 1, dtype=float)[:, None],
                    np.arange(1, ncy + 1, dtype=float)[None, :],
                )
                * cell,
                self._params.alpha,
            )

    def _cells_for(self, xy: np.ndarray) -> np.ndarray:
        """Linearized cell indices of the given coordinates (must be in bounds)."""
        ncx, ncy = self._shape  # type: ignore[misc]
        cx = np.minimum(((xy[:, 0] - self._origin[0]) / self._cell).astype(np.int64), ncx - 1)
        cy = np.minimum(((xy[:, 1] - self._origin[1]) / self._cell).astype(np.int64), ncy - 1)
        return cx * ncy + cy

    def _in_bounds(self, xy: np.ndarray) -> bool:
        """Whether all coordinates fall inside the current grid's bounding box."""
        ncx, ncy = self._shape  # type: ignore[misc]
        rel = xy - self._origin
        return bool(
            np.all(rel >= 0.0)
            and np.all(rel[:, 0] < ncx * self._cell)
            and np.all(rel[:, 1] < ncy * self._cell)
        )

    def _ensure_grid(self) -> None:
        if self._shape is None:
            self._build_grid()

    # ------------------------------------------------------------------ #
    # Incremental placement mutation (cell re-bucketing).
    # ------------------------------------------------------------------ #

    def update_positions(self, indices: np.ndarray, new_xy: np.ndarray) -> None:
        """Move nodes by re-bucketing them into their new grid cells.

        Movers that stay inside the grid's bounding box cost O(m): their
        cell ids are recomputed and nothing else changes (there are no
        per-pair caches to patch -- gains are always evaluated from
        positions).  A mover leaving the box triggers a full O(n) grid
        rebuild on the next query.  Either way the backend is
        indistinguishable from one freshly built over the new placement.
        """
        indices, new_xy = self._check_moves(self._n, indices, new_xy)
        if not indices.size:
            return
        self._positions[indices] = new_xy
        self._grid_version += 1
        if self._shape is None:
            return
        if self._in_bounds(new_xy):
            self._cell_of[indices] = self._cells_for(new_xy)
        else:
            self._shape = None

    def add_nodes(self, new_xy: np.ndarray) -> None:
        """Append nodes; in-bounds joiners are bucketed into existing cells."""
        new_xy = np.asarray(new_xy, dtype=float).reshape(-1, 2)
        if not len(new_xy):
            return
        self._positions = np.vstack([self._positions, new_xy])
        self._n += len(new_xy)
        self._grid_version += 1
        if self._shape is None:
            return
        if self._in_bounds(new_xy):
            self._cell_of = np.concatenate([self._cell_of, self._cells_for(new_xy)])
        else:
            self._shape = None

    def remove_nodes(self, indices: np.ndarray) -> None:
        """Delete nodes; survivors keep their cells under compacted indices."""
        indices = np.asarray(indices, dtype=np.int64).ravel()
        if not indices.size:
            return
        if indices.min() < 0 or indices.max() >= self._n:
            raise ValueError("node index out of range")
        keep = np.setdiff1d(np.arange(self._n), indices)
        if not keep.size:
            raise ValueError("cannot remove every node from a backend")
        self._positions = self._positions[keep]
        self._n = len(keep)
        self._grid_version += 1
        if self._shape is not None:
            self._cell_of = self._cell_of[keep]

    # ------------------------------------------------------------------ #
    # The certified round evaluation.
    # ------------------------------------------------------------------ #

    def _tx_pairs(
        self,
        lcx: np.ndarray,
        lcy: np.ndarray,
        offsets: np.ndarray,
        utiles: np.ndarray,
        tile_starts: np.ndarray,
        tile_counts: np.ndarray,
        base_key: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(listener position, tx-sorted position) pairs for the given tile offsets.

        ``lcx``/``lcy`` are the listeners' cell coordinates; ``offsets`` is
        an ``(m, 2)`` int array of tile offsets.  Every (listener, offset)
        neighbour tile is joined against the occupied transmitter tiles
        (``utiles`` sorted, with CSR ``tile_starts`` / ``tile_counts`` into
        the tile-sorted transmitter array) in one broadcast pass -- this
        runs tens of thousands of times per local-broadcast execution, so
        no Python loop over offsets.

        When ``base_key`` is given (the batched driver), it is a
        per-listener composite offset -- ``relative round x cell count`` --
        added to each neighbour tile id, and ``utiles`` holds matching
        composite ``(round, tile)`` keys: the same join then matches only
        transmitter tiles of the listener's own round.
        """
        ncx, ncy = self._shape  # type: ignore[misc]
        tx_ = lcx[:, None] + offsets[:, 0][None, :]
        ty_ = lcy[:, None] + offsets[:, 1][None, :]
        ok = (tx_ >= 0) & (tx_ < ncx) & (ty_ >= 0) & (ty_ < ncy)
        lidx = np.broadcast_to(
            np.arange(lcx.size, dtype=np.int64)[:, None], tx_.shape
        )[ok]
        tiles = tx_[ok] * ncy + ty_[ok]
        if base_key is not None:
            tiles = tiles + base_key[lidx]
        pos = np.minimum(np.searchsorted(utiles, tiles), utiles.size - 1)
        hit = utiles[pos] == tiles
        pos = pos[hit]
        if not pos.size:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        counts = tile_counts[pos]
        return np.repeat(lidx[hit], counts), _csr_take(tile_starts[pos], counts)

    @staticmethod
    def _ring_offsets(r: int) -> List[Tuple[int, int]]:
        """Tile offsets at Chebyshev distance exactly ``r`` (the ring shell)."""
        if r == 0:
            return [(0, 0)]
        ring = []
        for dx in range(-r, r + 1):
            for dy in range(-r, r + 1):
                if max(abs(dx), abs(dy)) == r:
                    ring.append((dx, dy))
        return ring

    _offset_cache: Dict[Tuple[str, int], np.ndarray] = {}

    @classmethod
    def _shell_arr(cls, r: int) -> np.ndarray:
        """``_ring_offsets(r)`` as a cached ``(m, 2)`` int64 array."""
        key = ("shell", r)
        if key not in cls._offset_cache:
            cls._offset_cache[key] = np.asarray(cls._ring_offsets(r), dtype=np.int64)
        return cls._offset_cache[key]

    @classmethod
    def _block_arr(cls, r: int) -> np.ndarray:
        """All offsets with Chebyshev distance ``<= r``, cached."""
        key = ("block", r)
        if key not in cls._offset_cache:
            offs: List[Tuple[int, int]] = []
            for s in range(r + 1):
                offs.extend(cls._ring_offsets(s))
            cls._offset_cache[key] = np.asarray(offs, dtype=np.int64)
        return cls._offset_cache[key]

    def _far_lower_bound(
        self,
        ltile_keys: np.ndarray,
        ucx: np.ndarray,
        ucy: np.ndarray,
        tile_counts: np.ndarray,
        round_tile_ptr: np.ndarray,
        ring: int,
    ) -> np.ndarray:
        """Certified lower bound on far-field interference, per listener.

        Every occupied tile beyond Chebyshev tile-distance ``ring``
        contributes at least ``count * P / d_max^alpha`` where ``d_max`` is
        the farthest-corner distance between the listener's cell and the
        tile -- valid wherever the individual nodes sit inside their cells.

        ``ltile_keys`` are composite ``relative round x cell count + tile``
        keys per listener (plain tile ids in the single-round case, where
        every relative round is 0); ``ucx``/``ucy``/``tile_counts`` describe
        the occupied transmitter tiles in composite order and
        ``round_tile_ptr`` is the CSR pointer from relative round to its
        tile range.  The bound depends on the listener only through its
        ``(round, tile)`` key, so it is evaluated once per unique key -- a
        ragged (query x same-round tiles) join reduced with ``bincount``,
        whose per-query accumulation order is the round's tile order
        regardless of batching or chunk boundaries (chunks split only
        between queries).  That order-stability is what keeps the batched
        and per-round drivers bit-identical.
        """
        ncx, ncy = self._shape  # type: ignore[misc]
        ncells = np.int64(ncx) * np.int64(ncy)
        uniq, inverse = np.unique(ltile_keys, return_inverse=True)
        qround, qtile = np.divmod(uniq, ncells)
        qcx, qcy = np.divmod(qtile, np.int64(ncy))
        counts = round_tile_ptr[qround + 1] - round_tile_ptr[qround]
        q = uniq.size
        per_tile = np.zeros(q)
        cum = np.cumsum(counts)
        start = 0
        while start < q:
            base = int(cum[start - 1]) if start else 0
            end = int(np.searchsorted(cum, base + _FAR_BLOCK_ELEMENTS, side="right"))
            end = min(q, max(end, start + 1))
            m = end - start
            pq = np.repeat(np.arange(m, dtype=np.int64), counts[start:end])
            pt = _csr_take(round_tile_ptr[qround[start:end]], counts[start:end])
            di = np.abs(qcx[start:end][pq] - ucx[pt])
            dj = np.abs(qcy[start:end][pq] - ucy[pt])
            far = (di > ring) | (dj > ring)
            contrib = np.where(far, tile_counts[pt] * self._far_gain[di, dj], 0.0)
            per_tile[start:end] = np.bincount(pq, weights=contrib, minlength=m)
            start = end
        return per_tile[inverse]

    def _exact_eval_segments(
        self,
        tx_pool: np.ndarray,
        seg_starts: np.ndarray,
        seg_counts: np.ndarray,
        rx_nodes: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Exact (total power, best gain, best sender node) per candidate.

        Candidate ``i`` (listening at node ``rx_nodes[i]``) is evaluated
        against the transmitter nodes ``tx_pool[seg_starts[i] :
        seg_starts[i] + seg_counts[i]]`` -- its round's transmitters in
        schedule order, so the strongest-tie break (first transmitter in
        round order, via :func:`segment_strongest`) matches the dense
        backend's ``argmax``.  Same gain arithmetic as :meth:`gain_block`;
        transmitters and candidates are disjoint (half-duplex filtering
        upstream), so no self-pair zeroing is needed.  Pair lists are
        chunked only at candidate boundaries and each segment accumulates
        sequentially, so results are independent of chunking and of how
        candidates from different rounds are interleaved -- the batched and
        per-round drivers agree bit for bit.
        """
        u = rx_nodes.size
        totals = np.empty(u)
        best_gain = np.empty(u)
        best_sender = np.empty(u, dtype=np.int64)
        power, alpha = self._params.power, self._params.alpha
        cum = np.cumsum(seg_counts)
        start = 0
        while start < u:
            base = int(cum[start - 1]) if start else 0
            end = int(np.searchsorted(cum, base + _FAR_BLOCK_ELEMENTS, side="right"))
            end = min(u, max(end, start + 1))
            m = end - start
            pair_cand = np.repeat(np.arange(m, dtype=np.int64), seg_counts[start:end])
            pair_pos = _csr_take(seg_starts[start:end], seg_counts[start:end])
            txy = self._positions[tx_pool[pair_pos]]
            rxy = self._positions[rx_nodes[start:end]][pair_cand]
            dx = txy[:, 0] - rxy[:, 0]
            dy = txy[:, 1] - rxy[:, 1]
            with np.errstate(divide="ignore"):
                gains = power / _kernels.dist_pow(dx * dx + dy * dy, alpha)
            gains[np.isinf(gains)] = COLOCATED_GAIN
            t, g, i = _kernels.segment_strongest(pair_cand, gains, m)
            totals[start:end] = t
            best_gain[start:end] = g
            best_sender[start:end] = tx_pool[pair_pos[i]]
            start = end
        return totals, best_gain, best_sender

    def _round_core(
        self,
        tx: np.ndarray,
        rx: np.ndarray,
        rx_cells_sorted: np.ndarray,
        rx_local_sorted: np.ndarray,
        in_tx: Optional[np.ndarray] = None,
        tx_sorted: Optional[np.ndarray] = None,
        tcell_sorted: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One round: certified pruning, ring expansion, exact fallback.

        ``tx`` is the (duplicate-free) transmitter index array; ``rx`` the
        listener pool, pre-bucketed as ``rx_cells_sorted`` (its cell ids,
        sorted) and ``rx_local_sorted`` (the matching rx-local indices).
        ``in_tx``, when given, is a node-indexed mask excluding the round's
        own transmitters (half-duplex) from the candidate set.
        ``tx_sorted``/``tcell_sorted``, when given, are the round's
        transmitters already stably sorted by cell id (the schedule driver
        derives them from one per-schedule composite argsort instead of
        paying the per-round argsort floor).  Returns the accepted
        ``(rx-local receiver, sender, sinr)`` arrays sorted by rx-local
        index -- the listener-array order the delivery table uses.
        """
        empty = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=float),
        )
        params = self._params
        noise = params.noise
        threshold = params.beta - NUMERIC_TOLERANCE
        stats = self._stats
        stats["rounds"] += 1
        stats["listeners"] += rx.size
        _, ncy = self._shape  # type: ignore[misc]

        # Bucket the round's transmitters by tile (unless pre-sorted).
        if tx_sorted is None or tcell_sorted is None:
            tcell = self._cell_of[tx]
            torder = np.argsort(tcell, kind="stable")
            tx_sorted = tx[torder]
            tcell_sorted = tcell[torder]
        cuts = np.flatnonzero(np.diff(tcell_sorted)) + 1
        tile_starts = np.concatenate([[0], cuts]).astype(np.int64)
        utiles = tcell_sorted[tile_starts]
        tile_counts = np.diff(np.concatenate([tile_starts, [tcell_sorted.size]]))
        ucx, ucy = np.divmod(utiles, ncy)

        # Candidate listeners: anyone in a tile Chebyshev-adjacent to an
        # occupied transmitter tile.  Everyone else has no transmitter
        # within the 3x3 near block, so their best achievable signal is
        # below the solo-decoding threshold: certified-rejected for free.
        ncx = self._shape[0]  # type: ignore[index]
        offs = self._block_arr(1)
        nx_ = ucx[:, None] + offs[:, 0][None, :]
        ny_ = ucy[:, None] + offs[:, 1][None, :]
        ok = (nx_ >= 0) & (nx_ < ncx) & (ny_ >= 0) & (ny_ < ncy)
        cand_tiles = np.unique(nx_[ok] * ncy + ny_[ok])
        lo = np.searchsorted(rx_cells_sorted, cand_tiles, side="left")
        hi = np.searchsorted(rx_cells_sorted, cand_tiles, side="right")
        cand = rx_local_sorted[_csr_take(lo, hi - lo)]
        if in_tx is not None and cand.size:
            cand = cand[~in_tx[rx[cand]]]
        if not cand.size:
            return empty
        stats["candidates"] += cand.size

        cand_cells = self._cell_of[rx[cand]]
        lcx, lcy = np.divmod(cand_cells, ncy)
        cand_xy = self._positions[rx[cand]]

        # Ring 1: exact gains over the 3x3 near block.
        pair_l, pair_t = self._tx_pairs(
            lcx, lcy, self._block_arr(1), utiles, tile_starts, tile_counts,
        )
        stats["near_pairs"] += pair_l.size
        gains = _kernels.pair_gains(
            self._positions[tx_sorted[pair_t]], cand_xy[pair_l],
            params.power, params.alpha, COLOCATED_GAIN,
        )
        near_sum, near_max = _kernels.near_reduce(pair_l, gains, cand.size)

        # Certificate 1 (signal): out-of-block gains are below the solo
        # threshold by construction, so listeners whose best near-field
        # gain is too cannot be decoded by anyone.
        und = np.flatnonzero(near_max >= threshold * noise)
        stats["pruned_signal"] += cand.size - und.size
        if not und.size:
            return empty

        # Certificate 2 (near interference): for survivors the global
        # strongest transmitter *is* the near-field maximum, and the exact
        # near sum lower-bounds the total power.
        ub = near_max[und] / (noise + (near_sum[und] - near_max[und]))
        keep = ub >= threshold
        stats["pruned_near"] += und.size - int(keep.sum())
        und = und[keep]

        # Ring expansion: widen the exact region shell by shell, tightening
        # the interference lower bound until the rejection is certified.
        for ring in range(2, self._max_ring + 1):
            if not und.size:
                break
            shell_l, shell_t = self._tx_pairs(
                lcx[und], lcy[und], self._shell_arr(ring),
                utiles, tile_starts, tile_counts,
            )
            if shell_l.size:
                stats["near_pairs"] += shell_l.size
                shell_gains = _kernels.pair_gains(
                    self._positions[tx_sorted[shell_t]], cand_xy[und][shell_l],
                    params.power, params.alpha, COLOCATED_GAIN,
                )
                shell_sum, _ = _kernels.near_reduce(shell_l, shell_gains, und.size)
                near_sum[und] += shell_sum
            ub = near_max[und] / (noise + (near_sum[und] - near_max[und]))
            keep = ub >= threshold
            stats["pruned_near"] += und.size - int(keep.sum())
            und = und[keep]

        # Far-field tile aggregation beyond the widest ring.
        if und.size:
            far_lo = self._far_lower_bound(
                cand_cells[und],
                ucx,
                ucy,
                tile_counts,
                np.array([0, utiles.size], dtype=np.int64),
                self._max_ring,
            )
            ub = near_max[und] / (noise + (near_sum[und] - near_max[und]) + far_lo)
            keep = ub >= threshold
            stats["pruned_far"] += und.size - int(keep.sum())
            und = und[keep]
        if not und.size:
            return empty

        # Exact fallback: full-row evaluation for the rare undecidable
        # listener (and every actual receiver), with the dense formulas.
        stats["exact"] += und.size
        totals, best_gain, best_sender = self._exact_eval_segments(
            tx,
            np.zeros(und.size, dtype=np.int64),
            np.full(und.size, tx.size, dtype=np.int64),
            rx[cand[und]],
        )
        best_sinr = best_gain / (noise + (totals - best_gain))
        ok = np.flatnonzero(best_sinr >= threshold)
        if not ok.size:
            return empty
        receivers = cand[und[ok]]
        order = np.argsort(receivers, kind="stable")
        return (
            receivers[order],
            best_sender[ok[order]],
            best_sinr[ok[order]],
        )

    # ------------------------------------------------------------------ #
    # Protocol entry points built on the certified round core.
    # ------------------------------------------------------------------ #

    def _bucket_listeners(self, rx: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Sort the listener pool by cell id: (sorted cells, matching rx-locals).

        Algorithm runs issue many schedule evaluations over the *same*
        listener pool, so the bucketing (an O(|rx| log |rx|) argsort) is
        memoized for the last pool seen.  The cache key includes
        ``_grid_version``, which every placement mutation bumps -- a moved
        node lands in a fresh bucketing, never a stale one (unit-tested via
        ``move_nodes``).
        """
        cached = self._listener_cache
        if (
            cached is not None
            and cached[0] == self._grid_version
            and cached[1].shape == rx.shape
            and np.array_equal(cached[1], rx)
        ):
            return cached[2], cached[3]
        cells = self._cell_of[rx]
        order = np.argsort(cells, kind="stable")
        result = (cells[order], order.astype(np.int64))
        self._listener_cache = (self._grid_version, rx.copy(), result[0], result[1])
        return result

    def receptions(
        self,
        transmitters: Sequence[int],
        listeners: Optional[Sequence[int]] = None,
    ) -> Dict[int, Reception]:
        """Per-listener decoded senders for one round (spatial fast path)."""
        transmitters = list(dict.fromkeys(int(t) for t in transmitters))
        if not transmitters:
            return {}
        tx = np.array(transmitters, dtype=np.int64)
        if listeners is None:
            mask = np.ones(self._n, dtype=bool)
            mask[tx] = False
            rx = np.flatnonzero(mask)
        else:
            tx_set = set(transmitters)
            ids = list(dict.fromkeys(int(v) for v in listeners if int(v) not in tx_set))
            if not ids:
                return {}
            rx = np.array(ids, dtype=np.int64)
        if not rx.size:
            return {}
        self._ensure_grid()
        cells_sorted, locals_sorted = self._bucket_listeners(rx)
        recv, send, sinr = self._round_core(tx, rx, cells_sorted, locals_sorted)
        return {
            int(rx[r]): Reception(receiver=int(rx[r]), sender=int(s), sinr=float(q))
            for r, s, q in zip(recv, send, sinr)
        }

    def _resolve_round_batch(
        self, override: Optional[object], tx_indptr: np.ndarray, tx_members: np.ndarray
    ) -> int:
        """Concrete batch size for this run: the knob, or the auto heuristic.

        ``"auto"`` targets ~``_AUTO_BATCH_TARGET`` schedule entries per
        fused batch -- dense rounds batch little (physics already dominates),
        sparse rounds (the TDMA/backoff regime where the per-round call
        floor dominates) batch up to ``_MAX_ROUND_BATCH``.
        """
        value = self._round_batch if override is None else _validate_round_batch(override)
        if value == "auto":
            num_rounds = len(tx_indptr) - 1
            if num_rounds <= 1:
                return 1
            avg = tx_members.size / num_rounds
            return int(max(1, min(_MAX_ROUND_BATCH, _AUTO_BATCH_TARGET // max(1.0, avg))))
        return int(value)

    def _batch_core(
        self,
        t0: int,
        t1: int,
        tx_indptr: np.ndarray,
        tx_members: np.ndarray,
        btx: np.ndarray,
        btcell: np.ndarray,
        bround: np.ndarray,
        rx: np.ndarray,
        rx_cells_sorted: np.ndarray,
        rx_local_sorted: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fused evaluation of rounds ``[t0, t1)`` through one composite join.

        ``btx``/``btcell``/``bround`` are the batch's transmitters, their
        cell ids and their *relative* round ids, stably sorted by
        ``(round, cell)`` -- slices of the per-schedule composite argsort.
        Every stage of :meth:`_round_core` runs here exactly once for the
        whole batch, keyed by ``relative round x cell count + tile`` so
        rounds never mix; per-listener pair sequences, reduction orders and
        chunk-boundary rules are identical to the per-round core, making
        the fused results bit-identical to running rounds one at a time.
        Returns ``(absolute round id, rx-local receiver, sender, sinr)``
        arrays in round-major, receiver-sorted order.
        """
        empty = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=float),
        )
        params = self._params
        noise = params.noise
        threshold = params.beta - NUMERIC_TOLERANCE
        stats = self._stats
        bstats = self._batch_stats
        ncx, ncy = self._shape  # type: ignore[misc]
        ncells = np.int64(ncx) * np.int64(ncy)
        num_rel = t1 - t0

        # Composite (round, tile) bucketing: tkey is already sorted because
        # the batch slice is round-major and cell-sorted within each round.
        tkey = bround * ncells + btcell
        cuts = np.flatnonzero(np.diff(tkey)) + 1
        tile_starts = np.concatenate([[0], cuts]).astype(np.int64)
        utile_key = tkey[tile_starts]
        tile_counts = np.diff(np.concatenate([tile_starts, [tkey.size]]))
        uround, utile = np.divmod(utile_key, ncells)
        ucx, ucy = np.divmod(utile, np.int64(ncy))
        round_tile_ptr = np.searchsorted(
            uround, np.arange(num_rel + 1, dtype=np.int64), side="left"
        ).astype(np.int64)
        nonempty = int(np.count_nonzero(round_tile_ptr[1:] > round_tile_ptr[:-1]))
        stats["rounds"] += nonempty
        stats["listeners"] += rx.size * nonempty

        # Candidate (round, listener) pairs: unique composite neighbour
        # tiles of the occupied transmitter tiles, joined against the
        # cell-sorted listener pool.  Composite unique keys are round-major
        # and tile-sorted within a round -- exactly the concatenation of the
        # per-round candidate lists.
        offs = self._block_arr(1)
        nx_ = ucx[:, None] + offs[:, 0][None, :]
        ny_ = ucy[:, None] + offs[:, 1][None, :]
        ok = (nx_ >= 0) & (nx_ < ncx) & (ny_ >= 0) & (ny_ < ncy)
        base = np.broadcast_to((uround * ncells)[:, None], nx_.shape)[ok]
        cand_keys = np.unique(base + nx_[ok] * ncy + ny_[ok])
        cround, ctile = np.divmod(cand_keys, ncells)
        lo = np.searchsorted(rx_cells_sorted, ctile, side="left")
        hi = np.searchsorted(rx_cells_sorted, ctile, side="right")
        ccounts = hi - lo
        cand_round = np.repeat(cround, ccounts)
        cand = rx_local_sorted[_csr_take(lo, ccounts)]
        if cand.size:
            # Half-duplex: drop candidates transmitting in their own round,
            # via a sorted composite (round, node) membership probe.
            txnode_key = np.sort(bround * np.int64(self._n) + btx)
            ckey = cand_round * np.int64(self._n) + rx[cand]
            pos = np.minimum(np.searchsorted(txnode_key, ckey), txnode_key.size - 1)
            keep_c = txnode_key[pos] != ckey
            cand = cand[keep_c]
            cand_round = cand_round[keep_c]
        if not cand.size:
            return empty
        stats["candidates"] += cand.size

        cand_cells = self._cell_of[rx[cand]]
        lcx, lcy = np.divmod(cand_cells, np.int64(ncy))
        cand_xy = self._positions[rx[cand]]
        base_key = cand_round * ncells

        # Ring 1: exact gains over each candidate's own-round 3x3 block.
        pair_l, pair_t = self._tx_pairs(
            lcx, lcy, offs, utile_key, tile_starts, tile_counts, base_key=base_key
        )
        stats["near_pairs"] += pair_l.size
        bstats["join_entries"] += pair_l.size
        gains = _kernels.pair_gains(
            self._positions[btx[pair_t]], cand_xy[pair_l],
            params.power, params.alpha, COLOCATED_GAIN,
        )
        near_sum, near_max = _kernels.near_reduce(pair_l, gains, cand.size)

        # Certificate 1 (signal).
        und = np.flatnonzero(near_max >= threshold * noise)
        stats["pruned_signal"] += cand.size - und.size
        if not und.size:
            return empty

        # Certificate 2 (near interference).
        ub = near_max[und] / (noise + (near_sum[und] - near_max[und]))
        keep = ub >= threshold
        stats["pruned_near"] += und.size - int(keep.sum())
        und = und[keep]

        # Ring expansion, shell by shell.
        for ring in range(2, self._max_ring + 1):
            if not und.size:
                break
            shell_l, shell_t = self._tx_pairs(
                lcx[und], lcy[und], self._shell_arr(ring),
                utile_key, tile_starts, tile_counts, base_key=base_key[und],
            )
            if shell_l.size:
                stats["near_pairs"] += shell_l.size
                bstats["join_entries"] += shell_l.size
                shell_gains = _kernels.pair_gains(
                    self._positions[btx[shell_t]], cand_xy[und][shell_l],
                    params.power, params.alpha, COLOCATED_GAIN,
                )
                shell_sum, _ = _kernels.near_reduce(shell_l, shell_gains, und.size)
                near_sum[und] += shell_sum
            ub = near_max[und] / (noise + (near_sum[und] - near_max[und]))
            keep = ub >= threshold
            stats["pruned_near"] += und.size - int(keep.sum())
            und = und[keep]

        # Far-field tile aggregation beyond the widest ring, grouped per
        # (round, listener tile).
        if und.size:
            far_lo = self._far_lower_bound(
                base_key[und] + cand_cells[und],
                ucx, ucy, tile_counts, round_tile_ptr, self._max_ring,
            )
            ub = near_max[und] / (noise + (near_sum[und] - near_max[und]) + far_lo)
            keep = ub >= threshold
            stats["pruned_far"] += und.size - int(keep.sum())
            und = und[keep]
        if not und.size:
            return empty

        # Segmented exact fallback: each survivor against its own round's
        # transmitters in schedule order.
        stats["exact"] += und.size
        abs_round = cand_round[und] + t0
        seg_starts = tx_indptr[abs_round]
        seg_counts = tx_indptr[abs_round + 1] - seg_starts
        totals, best_gain, best_sender = self._exact_eval_segments(
            tx_members, seg_starts, seg_counts, rx[cand[und]]
        )
        best_sinr = best_gain / (noise + (totals - best_gain))
        ok_s = np.flatnonzero(best_sinr >= threshold)
        if not ok_s.size:
            return empty
        sel = und[ok_s]
        recv = cand[sel]
        order = np.argsort(cand_round[sel] * np.int64(rx.size) + recv, kind="stable")
        return (
            cand_round[sel[order]] + t0,
            recv[order],
            best_sender[ok_s[order]],
            best_sinr[ok_s[order]],
        )

    def receptions_table(
        self,
        tx_indptr: np.ndarray,
        tx_members: np.ndarray,
        listeners: Optional[Sequence[int]] = None,
        *,
        round_batch: Optional[object] = None,
    ) -> DeliveryTable:
        """Columnar schedule evaluation through the spatial round core.

        The listener pool is bucketed once per call and the transmitter
        table is tile-sorted once with a single composite ``(round, cell)``
        argsort; consecutive rounds are then fused ``round_batch`` at a time
        through :meth:`_batch_core` (or evaluated one by one through
        :meth:`_round_core` when the resolved batch size is 1).  Results
        are bit-identical for every batch size -- fusing only amortizes the
        per-round NumPy call floors.  ``round_batch`` overrides the
        backend's configured default for this call (``int >= 1`` or
        ``"auto"``); :meth:`grid_info` reports the resolved size and the
        per-run fuse counters.  Semantically identical to the generic
        chunked path (property-tested against the dense backend).
        """
        tx_indptr = np.ascontiguousarray(tx_indptr, dtype=np.int64)
        tx_members = np.ascontiguousarray(tx_members, dtype=np.int64)
        num_rounds = len(tx_indptr) - 1
        rx = self._normalize_listeners(listeners)
        batch = self._resolve_round_batch(round_batch, tx_indptr, tx_members)
        bstats = self._batch_stats
        for key in bstats:
            bstats[key] = 0
        bstats["round_batch"] = batch
        if rx.size == 0 or num_rounds == 0 or len(tx_members) == 0:
            bstats["rounds_empty"] = num_rounds
            return _empty_table(num_rounds)
        self._ensure_grid()
        cells_sorted, locals_sorted = self._bucket_listeners(rx)

        # One composite (round, cell) argsort for the whole schedule: every
        # round's tile-sorted transmitter slice -- batched or not -- is a
        # slice of this order (stable sort of round-major keys == the
        # concatenation of per-round stable sorts).
        round_sizes = np.diff(tx_indptr)
        member_round = np.repeat(np.arange(num_rounds, dtype=np.int64), round_sizes)
        ncells = np.int64(self._shape[0]) * np.int64(self._shape[1])  # type: ignore[index]
        member_cells = self._cell_of[tx_members]
        gorder = np.argsort(member_round * ncells + member_cells, kind="stable")
        sorted_members = tx_members[gorder]
        sorted_cells = member_cells[gorder]
        sorted_rounds = member_round[gorder]

        out_rounds: List[np.ndarray] = []
        out_receivers: List[np.ndarray] = []
        out_senders: List[np.ndarray] = []
        out_sinr: List[np.ndarray] = []
        if batch <= 1:
            in_tx = np.zeros(self._n, dtype=bool)
            for t in range(num_rounds):
                lo, hi = int(tx_indptr[t]), int(tx_indptr[t + 1])
                if lo == hi:
                    bstats["rounds_empty"] += 1
                    continue
                tx_slice = tx_members[lo:hi]
                in_tx[tx_slice] = True
                recv, send, sinr = self._round_core(
                    tx_slice, rx, cells_sorted, locals_sorted, in_tx,
                    tx_sorted=sorted_members[lo:hi],
                    tcell_sorted=sorted_cells[lo:hi],
                )
                in_tx[tx_slice] = False
                bstats["rounds_single"] += 1
                if recv.size:
                    out_rounds.append(np.full(recv.size, t, dtype=np.int64))
                    out_receivers.append(rx[recv])
                    out_senders.append(send)
                    out_sinr.append(sinr)
        else:
            for t0 in range(0, num_rounds, batch):
                t1 = min(num_rounds, t0 + batch)
                lo, hi = int(tx_indptr[t0]), int(tx_indptr[t1])
                span = np.count_nonzero(round_sizes[t0:t1])
                bstats["rounds_empty"] += (t1 - t0) - int(span)
                if lo == hi:
                    continue
                bstats["batches"] += 1
                bstats["rounds_fused"] += int(span)
                rounds_abs, recv, send, sinr = self._batch_core(
                    t0, t1, tx_indptr, tx_members,
                    sorted_members[lo:hi],
                    sorted_cells[lo:hi],
                    sorted_rounds[lo:hi] - t0,
                    rx, cells_sorted, locals_sorted,
                )
                if recv.size:
                    out_rounds.append(rounds_abs)
                    out_receivers.append(rx[recv])
                    out_senders.append(send)
                    out_sinr.append(sinr)

        if not out_rounds:
            return _empty_table(num_rounds)
        return DeliveryTable(
            num_rounds=num_rounds,
            round_ids=np.concatenate(out_rounds),
            receivers=np.concatenate(out_receivers),
            senders=np.concatenate(out_senders),
            sinr=np.concatenate(out_sinr),
        )
