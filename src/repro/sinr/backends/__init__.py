"""Pluggable SINR physics backends.

Every backend implements the :class:`~repro.sinr.backends.base.PhysicsBackend`
protocol -- one round via ``receptions()``, a whole schedule via
``receptions_batch()`` -- and they are interchangeable everywhere a network or
simulator needs physics.  Selection is by name (``"dense"``, ``"lazy"`` or
``"spatial"``) through :func:`make_backend`, threaded from
``WirelessNetwork(backend=...)``, the deployment generators, and the CLI's
``--backend`` option.
"""

from __future__ import annotations

from typing import Mapping, Tuple, Union

import numpy as np

from ..model import SINRParameters
from .base import PhysicsBackend, Reception, RoundReceptions
from .dense import DenseMatrixBackend
from .lazy import LazyBlockBackend
from .spatial import SpatialGridBackend

#: Name -> backend class registry used by :func:`make_backend` and the CLI.
BACKENDS = {
    "dense": DenseMatrixBackend,
    "lazy": LazyBlockBackend,
    "spatial": SpatialGridBackend,
}


def make_backend(
    backend: Union[str, Tuple[str, Mapping[str, object]], PhysicsBackend],
    positions: np.ndarray,
    params: SINRParameters,
) -> PhysicsBackend:
    """Build (or pass through) a physics backend for a placement.

    ``backend`` is a registry name (``"dense"``, ``"lazy"``, ``"spatial"``),
    a ``(name, options)`` pair whose options dict is forwarded to the
    backend constructor as keyword arguments (e.g. ``("spatial",
    {"round_batch": 16})`` or ``("dense", {"gain_dtype": "float32"})`` --
    this is how ``DeploymentSpec.backend_params`` reaches the backend), or
    an already constructed :class:`PhysicsBackend`, whose size must match
    ``positions``.
    """
    if isinstance(backend, PhysicsBackend):
        if backend.size != len(positions):
            raise ValueError(
                f"backend holds {backend.size} nodes but the placement has {len(positions)}"
            )
        return backend
    options: Mapping[str, object] = {}
    if isinstance(backend, tuple):
        if len(backend) != 2 or not isinstance(backend[1], Mapping):
            raise ValueError(
                "tuple backend must be (name, options mapping), got " f"{backend!r}"
            )
        backend, options = backend
    try:
        cls = BACKENDS[backend]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown physics backend {backend!r}; available: {sorted(BACKENDS)}"
        ) from None
    if not options:
        return cls(np.asarray(positions, dtype=float), params)
    try:
        return cls(np.asarray(positions, dtype=float), params, **dict(options))
    except TypeError as exc:
        raise ValueError(
            f"backend {backend!r} rejected options {dict(options)!r}: {exc}"
        ) from None


__all__ = [
    "BACKENDS",
    "DenseMatrixBackend",
    "LazyBlockBackend",
    "PhysicsBackend",
    "Reception",
    "RoundReceptions",
    "SpatialGridBackend",
    "make_backend",
]
