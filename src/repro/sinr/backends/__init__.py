"""Pluggable SINR physics backends.

Every backend implements the :class:`~repro.sinr.backends.base.PhysicsBackend`
protocol -- one round via ``receptions()``, a whole schedule via
``receptions_batch()`` -- and they are interchangeable everywhere a network or
simulator needs physics.  Selection is by name (``"dense"``, ``"lazy"`` or
``"spatial"``) through :func:`make_backend`, threaded from
``WirelessNetwork(backend=...)``, the deployment generators, and the CLI's
``--backend`` option.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..model import SINRParameters
from .base import PhysicsBackend, Reception, RoundReceptions
from .dense import DenseMatrixBackend
from .lazy import LazyBlockBackend
from .spatial import SpatialGridBackend

#: Name -> backend class registry used by :func:`make_backend` and the CLI.
BACKENDS = {
    "dense": DenseMatrixBackend,
    "lazy": LazyBlockBackend,
    "spatial": SpatialGridBackend,
}


def make_backend(
    backend: Union[str, PhysicsBackend],
    positions: np.ndarray,
    params: SINRParameters,
) -> PhysicsBackend:
    """Build (or pass through) a physics backend for a placement.

    ``backend`` is a registry name (``"dense"``, ``"lazy"``, ``"spatial"``)
    or an already
    constructed :class:`PhysicsBackend`, whose size must match ``positions``.
    """
    if isinstance(backend, PhysicsBackend):
        if backend.size != len(positions):
            raise ValueError(
                f"backend holds {backend.size} nodes but the placement has {len(positions)}"
            )
        return backend
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown physics backend {backend!r}; available: {sorted(BACKENDS)}"
        ) from None
    return cls(np.asarray(positions, dtype=float), params)


__all__ = [
    "BACKENDS",
    "DenseMatrixBackend",
    "LazyBlockBackend",
    "PhysicsBackend",
    "Reception",
    "RoundReceptions",
    "SpatialGridBackend",
    "make_backend",
]
