"""Optional compiled kernels for the spatial backend's per-round hot path.

Three small numeric primitives dominate a spatial round evaluation:

* :func:`pair_gains` -- received power ``P / d^alpha`` for a flat list of
  (transmitter position, listener position) pairs, with the co-located
  clamp;
* :func:`near_reduce` -- segment reduction of those pair gains onto their
  listeners (total near-field power *and* strongest near-field gain in one
  pass);
* :func:`resolve_strongest` -- per-listener total power, strongest gain and
  strongest-transmitter index over an exact ``(k, m)`` gain block (the
  fallback path for listeners whose accept/reject decision the tile bounds
  cannot certify);
* :func:`segment_strongest` -- the ragged counterpart of
  :func:`resolve_strongest`: per-segment total power, strongest gain and the
  *flat index* of the first strongest pair over a flat, segment-major pair
  list.  This is what the batched multi-round driver uses, where each
  listener's exact-evaluation row count depends on its own round's
  transmitter set; ties resolve to the lowest flat index, matching
  ``np.argmax`` semantics on the block form.

Each primitive has a pure-NumPy implementation and, when `numba
<https://numba.pydata.org>`_ is importable, an ``@njit``-compiled fused-loop
variant that avoids the intermediate arrays (the NumPy versions materialize
``hypot``/``power`` temporaries and pay two passes for the sum+max
reduction).  Selection happens once at import time; ``numba`` is an
*optional* dependency (the ``[speed]`` extra) and nothing here imports it
eagerly beyond the guarded probe.  Both variants are exercised in CI, and
the property tests in ``tests/test_spatial_backend.py`` hold under either.

``KERNEL_BACKEND`` reports which implementation is active (``"numba"`` or
``"numpy"``); ``REPRO_NO_NUMBA=1`` in the environment forces the NumPy
fallback even when numba is installed (used by CI to test both paths on one
matrix entry).
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "KERNEL_BACKEND",
    "dist_pow",
    "near_reduce",
    "pair_gains",
    "resolve_strongest",
    "segment_strongest",
]


# --------------------------------------------------------------------- #
# Pure-NumPy implementations (always available, the reference semantics).
# --------------------------------------------------------------------- #


def dist_pow(dist_sq, alpha):
    """``d^alpha`` from squared distances, fast-pathing integral exponents.

    ``np.power`` with a float scalar exponent is a libm call per element and
    dominates exact-evaluation profiles; the physically common integral
    path-loss exponents (alpha = 2, 3, 4, ...) decompose into multiplies and
    at most one square root (last-ulp differences only, well inside the
    documented cross-backend tolerance).
    """
    ia = int(alpha)
    if alpha == ia and 1 <= ia <= 8:
        half, odd = divmod(ia, 2)
        out = None
        for _ in range(half):
            out = dist_sq if out is None else out * dist_sq
        if odd:
            root = np.sqrt(dist_sq)
            out = root if out is None else out * root
        # ia == 2 aliases the input; callers never mutate the result.
        return out
    return np.power(np.sqrt(dist_sq), alpha)


def _pair_gains_numpy(tx_xy, rx_xy, power, alpha, colocated_gain):
    """``P / d^alpha`` per (transmitter, listener) position pair."""
    diff = tx_xy - rx_xy
    dist_sq = diff[:, 0] * diff[:, 0] + diff[:, 1] * diff[:, 1]
    with np.errstate(divide="ignore"):
        gains = power / dist_pow(dist_sq, alpha)
    gains[np.isinf(gains)] = colocated_gain
    return gains


def _near_reduce_numpy(listener_idx, gains, num_listeners):
    """Per-listener (sum, max) of the pair gains (segment reduction)."""
    sums = np.bincount(listener_idx, weights=gains, minlength=num_listeners)
    maxs = np.zeros(num_listeners, dtype=np.float64)
    np.maximum.at(maxs, listener_idx, gains)
    return sums, maxs


def _resolve_strongest_numpy(block):
    """Per-column (total, best gain, best row index) of a gain block."""
    totals = block.sum(axis=0)
    best_idx = block.argmax(axis=0)
    best_gain = block[best_idx, np.arange(block.shape[1])]
    return totals, best_gain, best_idx


_INT64_MAX = np.iinfo(np.int64).max


def _segment_strongest_numpy(seg_idx, gains, num_segments):
    """Per-segment (total, best gain, flat index of the first best pair).

    ``seg_idx`` must be segment-major (non-decreasing) and ``gains``
    strictly positive; both hold on every call site (pair lists are built
    candidate-major and gains are clamped powers).  Totals accumulate in
    flat input order (``np.bincount`` adds sequentially per bin), which is
    what makes the batched and per-round drivers bit-identical; ties on the
    maximum resolve to the lowest flat index, matching ``np.argmax`` over
    the equivalent dense block.  Empty segments report (0, 0, 0).
    """
    totals = np.bincount(seg_idx, weights=gains, minlength=num_segments)
    best_gain = np.zeros(num_segments, dtype=np.float64)
    np.maximum.at(best_gain, seg_idx, gains)
    hit = np.flatnonzero(gains == best_gain[seg_idx])
    best_idx = np.full(num_segments, _INT64_MAX, dtype=np.int64)
    np.minimum.at(best_idx, seg_idx[hit], hit)
    best_idx[best_idx == _INT64_MAX] = 0
    return totals, best_gain, best_idx


# --------------------------------------------------------------------- #
# Numba-compiled variants (selected when importable and not disabled).
# --------------------------------------------------------------------- #

KERNEL_BACKEND = "numpy"
pair_gains = _pair_gains_numpy
near_reduce = _near_reduce_numpy
resolve_strongest = _resolve_strongest_numpy
segment_strongest = _segment_strongest_numpy

if not os.environ.get("REPRO_NO_NUMBA"):
    try:
        from numba import njit
    except ImportError:  # numba is optional: the [speed] extra
        njit = None

    if njit is not None:

        @njit(cache=True)
        def _pair_gains_nb(tx_xy, rx_xy, power, alpha, colocated_gain):  # pragma: no cover
            out = np.empty(tx_xy.shape[0], dtype=np.float64)
            for i in range(tx_xy.shape[0]):
                dx = tx_xy[i, 0] - rx_xy[i, 0]
                dy = tx_xy[i, 1] - rx_xy[i, 1]
                dist = np.sqrt(dx * dx + dy * dy)
                if dist > 0.0:
                    out[i] = power / dist**alpha
                else:
                    out[i] = colocated_gain
            return out

        @njit(cache=True)
        def _near_reduce_nb(listener_idx, gains, num_listeners):  # pragma: no cover
            sums = np.zeros(num_listeners, dtype=np.float64)
            maxs = np.zeros(num_listeners, dtype=np.float64)
            for i in range(listener_idx.size):
                j = listener_idx[i]
                g = gains[i]
                sums[j] += g
                if g > maxs[j]:
                    maxs[j] = g
            return sums, maxs

        @njit(cache=True)
        def _resolve_strongest_nb(block):  # pragma: no cover
            k, m = block.shape
            totals = np.zeros(m, dtype=np.float64)
            best_gain = np.zeros(m, dtype=np.float64)
            best_idx = np.zeros(m, dtype=np.int64)
            for i in range(k):
                for j in range(m):
                    g = block[i, j]
                    totals[j] += g
                    if g > best_gain[j]:
                        best_gain[j] = g
                        best_idx[j] = i
            return totals, best_gain, best_idx

        @njit(cache=True)
        def _segment_strongest_nb(seg_idx, gains, num_segments):  # pragma: no cover
            totals = np.zeros(num_segments, dtype=np.float64)
            best_gain = np.zeros(num_segments, dtype=np.float64)
            best_idx = np.zeros(num_segments, dtype=np.int64)
            for i in range(seg_idx.size):
                j = seg_idx[i]
                g = gains[i]
                totals[j] += g
                # Strict > keeps the first maximal pair, matching the NumPy
                # variant's lowest-flat-index tie break; sequential += keeps
                # the totals bit-identical to np.bincount's per-bin order.
                if g > best_gain[j]:
                    best_gain[j] = g
                    best_idx[j] = i
            return totals, best_gain, best_idx

        KERNEL_BACKEND = "numba"
        pair_gains = _pair_gains_nb
        near_reduce = _near_reduce_nb
        resolve_strongest = _resolve_strongest_nb
        segment_strongest = _segment_strongest_nb
