"""Lazy physics backend: gain blocks computed on demand, O(n) resident memory.

Instead of materializing the O(n^2) gain matrix, this backend recomputes
received-power *rows* (one transmitter against all nodes) directly from the
node positions whenever a round asks for them, and keeps the most recently
used rows in a bounded LRU cache.  Resident memory is O(n) -- positions plus
a constant number of cached rows -- which unlocks deployments of 100k+ nodes
that the dense backend cannot hold.

The paper's schedules make this cheap in practice: each round's transmitter
set is sparse (a selector names O(Delta) IDs out of n), and the *same*
globally known schedules are re-executed many times (once per label, once per
phase), so the rows of recurring transmitters are served from cache.

Numerically the computed rows match the dense backend's matrix rows up to
floating-point rounding -- both evaluate ``P / d^alpha`` with the same
elementwise operations, though vectorization over different shapes may differ
in the last ulp -- so the two backends produce the same receptions;
``tests/test_backends.py`` asserts the equivalence property on random
deployments.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

import numpy as np

from ..model import SINRParameters
from .base import COLOCATED_GAIN, PhysicsBackend

#: Default bound on the memory held by the row cache (bytes).
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024


class LazyBlockBackend(PhysicsBackend):
    """SINR physics over positions with on-demand gain rows and an LRU cache.

    Parameters
    ----------
    positions:
        ``(n, 2)`` array of node coordinates.  Unlike the dense backend, a
        metric-only (distance matrix) construction is not supported: storing
        the matrix would defeat the O(n) memory goal.
    params:
        The :class:`~repro.sinr.model.SINRParameters` of the environment.
    cache_bytes:
        Bound on the bytes kept in the row cache; at least one row is always
        cached.  The default (64 MiB) caches ~80 full rows at n = 100k.
    """

    def __init__(
        self,
        positions: np.ndarray,
        params: SINRParameters,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
    ) -> None:
        super().__init__(params)
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError("positions must be an (n, 2) array")
        self._positions = positions
        self._n = len(positions)
        self._cache_bytes = int(cache_bytes)
        self._capacity_rows = max(1, self._cache_bytes // (8 * max(1, self._n)))
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    @property
    def size(self) -> int:
        """Number of nodes in the placement."""
        return self._n

    @property
    def positions(self) -> np.ndarray:
        """Node coordinates (read-only view)."""
        view = self._positions.view()
        view.flags.writeable = False
        return view

    @property
    def distances(self) -> np.ndarray:
        """Unavailable: materializing the O(n^2) matrix is what this backend avoids."""
        raise ValueError(
            "LazyBlockBackend does not materialize the pairwise-distance matrix; "
            "use distance(a, b) for point queries or the dense backend"
        )

    def distance(self, a: int, b: int) -> float:
        """Distance between nodes ``a`` and ``b`` (computed from positions)."""
        diff = self._positions[a] - self._positions[b]
        return float(np.sqrt(diff[0] * diff[0] + diff[1] * diff[1]))

    def cache_info(self) -> Dict[str, int]:
        """Row-cache statistics (for benchmarks and tests)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "resident_rows": len(self._cache),
            "capacity_rows": self._capacity_rows,
        }

    # ------------------------------------------------------------------ #
    # Incremental placement mutation.
    # ------------------------------------------------------------------ #

    def _resize_cache(self) -> None:
        """Re-derive the row capacity after ``n`` changed; evict any overflow."""
        self._capacity_rows = max(1, self._cache_bytes // (8 * max(1, self._n)))
        while len(self._cache) > self._capacity_rows:
            self._cache.popitem(last=False)

    def _gains_to(self, senders: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gains from each cached ``sender`` to the ``targets`` positions only.

        Callers guarantee no self-pairs (the senders' own rows were evicted
        or the targets are new nodes), so only the co-located clamp applies.
        """
        diff = self._positions[senders][:, None, :] - self._positions[targets][None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        with np.errstate(divide="ignore"):
            gains = self._params.power / np.power(dist, self._params.alpha)
        gains[np.isinf(gains)] = COLOCATED_GAIN
        return gains

    def update_positions(self, indices: np.ndarray, new_xy: np.ndarray) -> None:
        """Move nodes: evict the moved senders' rows, patch the moved columns.

        Only the cache entries the move actually touches are recomputed --
        the rows *of* moved senders are dropped (they changed entirely) and
        the entries *towards* moved nodes inside the surviving rows are
        overwritten in place, so a mostly-static cache stays warm across
        epochs.
        """
        indices, new_xy = self._check_moves(self._n, indices, new_xy)
        if not indices.size:
            return
        self._positions[indices] = new_xy
        for sender in indices:
            self._cache.pop(int(sender), None)
        if self._cache:
            senders = np.fromiter(self._cache.keys(), dtype=np.int64, count=len(self._cache))
            patch = self._gains_to(senders, indices)
            for i, sender in enumerate(senders):
                self._cache[int(sender)][indices] = patch[i]

    def add_nodes(self, new_xy: np.ndarray) -> None:
        """Append nodes; surviving cached rows grow a freshly computed tail."""
        new_xy = np.asarray(new_xy, dtype=float).reshape(-1, 2)
        m = len(new_xy)
        if m == 0:
            return
        old_n = self._n
        self._positions = np.vstack([self._positions, new_xy])
        self._n = old_n + m
        if self._cache:
            senders = np.fromiter(self._cache.keys(), dtype=np.int64, count=len(self._cache))
            tails = self._gains_to(senders, np.arange(old_n, self._n))
            for i, sender in enumerate(senders):
                self._cache[int(sender)] = np.concatenate([self._cache[int(sender)], tails[i]])
        self._resize_cache()

    def remove_nodes(self, indices: np.ndarray) -> None:
        """Delete nodes; cached rows are compacted and re-keyed to the new indices."""
        indices = np.asarray(indices, dtype=np.int64).ravel()
        if not indices.size:
            return
        if indices.min() < 0 or indices.max() >= self._n:
            raise ValueError("node index out of range")
        keep = np.setdiff1d(np.arange(self._n), indices)
        if not keep.size:
            raise ValueError("cannot remove every node from a backend")
        new_index = np.full(self._n, -1, dtype=np.int64)
        new_index[keep] = np.arange(len(keep))
        self._positions = self._positions[keep]
        self._n = len(keep)
        survivors: "OrderedDict[int, np.ndarray]" = OrderedDict()
        for sender, row in self._cache.items():
            if new_index[sender] >= 0:
                survivors[int(new_index[sender])] = row[keep]
        self._cache = survivors
        self._resize_cache()

    # ------------------------------------------------------------------ #
    # Row computation and caching.
    # ------------------------------------------------------------------ #

    def _compute_rows(self, senders: np.ndarray) -> np.ndarray:
        """Gain rows for ``senders`` against all nodes, straight from positions."""
        sub = self._positions[senders]
        diff = sub[:, None, :] - self._positions[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        with np.errstate(divide="ignore"):
            gains = self._params.power / np.power(dist, self._params.alpha)
        # Same conventions as the dense matrix: zero self-gain first, then
        # clamp co-located distinct pairs to a huge finite value.
        gains[np.arange(len(senders)), senders] = 0.0
        gains[np.isinf(gains)] = COLOCATED_GAIN
        return gains

    def _rows(self, senders: np.ndarray) -> np.ndarray:
        """Gain rows for ``senders`` (cache-served, LRU-evicted)."""
        cache = self._cache
        fresh = list(dict.fromkeys(int(s) for s in senders if int(s) not in cache))
        if fresh:
            computed = self._compute_rows(np.array(fresh, dtype=int))
            self._misses += len(fresh)
            for row, sender in zip(computed, fresh):
                cache[sender] = row
            while len(cache) > self._capacity_rows:
                cache.popitem(last=False)
        fresh_set = set(fresh)
        out = np.empty((len(senders), self._n), dtype=float)
        for i, s in enumerate(senders):
            s = int(s)
            row = cache.get(s)
            if row is None:
                # Evicted within this very call (request larger than the
                # cache); recompute without touching the cache.
                row = self._compute_rows(np.array([s], dtype=int))[0]
            else:
                cache.move_to_end(s)
                if s not in fresh_set:
                    self._hits += 1
            out[i] = row
        return out

    def gain_block(self, senders: np.ndarray, receivers: np.ndarray) -> np.ndarray:
        """Gain sub-matrix, assembled from cached/recomputed rows."""
        rows = self._rows(np.asarray(senders, dtype=int))
        return rows[:, np.asarray(receivers, dtype=int)]
