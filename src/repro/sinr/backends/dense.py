"""Dense-matrix physics backend: precomputed O(n^2) gain matrix.

The historical (and default) backend of the reproduction: at construction it
materializes the full pairwise received-power matrix, after which every round
is a handful of numpy reductions over sub-matrices.  Fastest per round for
deployments that fit in memory (~tens of thousands of nodes); switch to
:class:`~repro.sinr.backends.lazy.LazyBlockBackend` beyond that.

This is also the only backend that supports *metric-only* construction from
a pairwise-distance matrix (the paper's footnote-1 generalization to
bounded-growth metric spaces), since an abstract metric has no positions to
recompute distances from.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..geometry import pairwise_distances
from ..model import NUMERIC_TOLERANCE, SINRParameters
from .base import DeliveryTable, PhysicsBackend, _empty_table


class DenseMatrixBackend(PhysicsBackend):
    """Evaluates SINR receptions from a precomputed dense gain matrix.

    Parameters
    ----------
    positions:
        ``(n, 2)`` array of node coordinates.
    params:
        The :class:`~repro.sinr.model.SINRParameters` of the environment.
    distances:
        Alternatively, a symmetric pairwise-distance matrix (abstract metric).
    """

    def __init__(
        self,
        positions: Optional[np.ndarray],
        params: SINRParameters,
        distances: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(params)
        if distances is None:
            if positions is None:
                raise ValueError("either positions or distances must be given")
            positions = np.asarray(positions, dtype=float)
            if positions.ndim != 2 or positions.shape[1] != 2:
                raise ValueError("positions must be an (n, 2) array")
            self._positions: Optional[np.ndarray] = positions
            distances = pairwise_distances(positions)
        else:
            distances = np.asarray(distances, dtype=float)
            if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
                raise ValueError("distances must be a square matrix")
            if not np.allclose(distances, distances.T, atol=1e-9):
                raise ValueError("distances must be symmetric")
            if np.any(distances < -NUMERIC_TOLERANCE):
                raise ValueError("distances must be non-negative")
            self._positions = (
                np.asarray(positions, dtype=float) if positions is not None else None
            )
        self._n = len(distances)
        with np.errstate(divide="ignore"):
            gains = params.power / np.power(distances, params.alpha)
        np.fill_diagonal(gains, 0.0)
        # Co-located distinct nodes would have infinite gain; clamp to a huge
        # finite value so that arithmetic stays well defined (reception from a
        # co-located node trivially succeeds when it is the only transmitter).
        gains[np.isinf(gains)] = np.finfo(float).max / (self._n + 1)
        self._gains = gains
        self._distances = distances
        self._topk: Optional[np.ndarray] = None

    @classmethod
    def from_distance_matrix(
        cls, distances: np.ndarray, params: SINRParameters
    ) -> "DenseMatrixBackend":
        """Backend over an abstract metric given by a pairwise-distance matrix.

        Supports the paper's footnote-1 generalization to bounded-growth
        metric spaces: the SINR rule (Equation 1) only needs distances, not
        coordinates.
        """
        return cls(None, params, distances=distances)

    @property
    def size(self) -> int:
        """Number of nodes in the placement."""
        return self._n

    @property
    def positions(self) -> np.ndarray:
        """Node coordinates (read-only view); unavailable for metric-only backends."""
        if self._positions is None:
            raise ValueError("this engine was built from a distance matrix; no coordinates exist")
        view = self._positions.view()
        view.flags.writeable = False
        return view

    @property
    def distances(self) -> np.ndarray:
        """Pairwise node distances (read-only view)."""
        view = self._distances.view()
        view.flags.writeable = False
        return view

    def distance(self, a: int, b: int) -> float:
        """Distance between nodes ``a`` and ``b``."""
        return float(self._distances[a, b])

    def gain(self, sender: int, receiver: int) -> float:
        """Received power ``P / d(sender, receiver)^alpha`` (direct lookup)."""
        return float(self._gains[sender, receiver])

    def gain_block(self, senders: np.ndarray, receivers: np.ndarray) -> np.ndarray:
        """Gather the requested sub-matrix of the precomputed gain matrix."""
        return self._gains[np.ix_(senders, receivers)]

    # ------------------------------------------------------------------ #
    # Columnar schedule evaluation (gemm + top-k fast path).
    # ------------------------------------------------------------------ #

    #: Per-listener strongest-sender table depth.  48 ranks make the
    #: probability that none of a round's transmitters appears in a
    #: listener's table negligible for the selector densities the paper's
    #: schedules use; misses fall back to an exact gather.
    _TOPK_DEPTH = 48

    def _topk_table(self) -> np.ndarray:
        """``(K, n)`` sender indices, per listener column sorted by gain desc.

        Built lazily on the first batched schedule evaluation and reused for
        every subsequent schedule over this placement.  Rationale: the
        strongest transmitter of a round, at listener ``j``, is the
        best-*globally-ranked* member of the transmitter set -- so if any of
        ``j``'s top-K senders transmits, the decoded sender is the first of
        them in rank order, found with one boolean gather instead of an
        argmax over the full gain sub-matrix.
        """
        if self._topk is None:
            # Ties (equal gains, e.g. equidistant or co-located senders) are
            # ranked in arbitrary partition order.  That never changes a
            # reported delivery: with beta > 1 a listener decodes only a
            # *strict* strongest transmitter (two tied maxima bound its SINR
            # below 1), so tied senders are only ever picked for listeners
            # that fail the threshold anyway.
            k = min(self._TOPK_DEPTH, self._n)
            part = np.argpartition(-self._gains, k - 1, axis=0)[:k]
            part_gains = np.take_along_axis(self._gains, part, axis=0)
            order = np.argsort(-part_gains, axis=0, kind="stable")
            self._topk = np.take_along_axis(part, order, axis=0)
        return self._topk

    def receptions_table(
        self,
        tx_indptr: np.ndarray,
        tx_members: np.ndarray,
        listeners: Optional[Sequence[int]] = None,
    ) -> DeliveryTable:
        """Columnar schedule evaluation specialized to the dense matrix.

        Two structural shortcuts over the generic chunked path, with
        identical semantics:

        * per-round interference totals for *all* rounds come from one BLAS
          matrix product (0/1 round-membership matrix x gain matrix) instead
          of per-round gather-and-sum;
        * the strongest transmitter per listener is read off the cached
          per-listener top-K rank table (:meth:`_topk_table`); rounds whose
          transmitter set misses a listener's table fall back to an exact
          gather for just those listeners.

        Reported SINR values can differ from the generic path in the last
        ulp (BLAS accumulation order), which is within the documented
        cross-backend tolerance.
        """
        tx_indptr = np.ascontiguousarray(tx_indptr, dtype=np.int64)
        tx_members = np.ascontiguousarray(tx_members, dtype=np.int64)
        num_rounds = len(tx_indptr) - 1
        rx = self._normalize_listeners(listeners)
        if rx.size == 0 or num_rounds == 0 or len(tx_members) == 0:
            return _empty_table(num_rounds)

        n = self._n
        gains = self._gains
        noise = self._params.noise
        threshold = self._params.beta - NUMERIC_TOLERANCE
        pos_in_rx = np.full(n, -1, dtype=np.int64)
        pos_in_rx[rx] = np.arange(rx.size)
        # Gain columns restricted to the listener pool (no copy when the pool
        # is exactly the identity order, the common case for schedule
        # executions; a permuted or partial pool needs the gather).
        identity_pool = rx.size == n and bool(np.array_equal(rx, np.arange(n)))
        gains_rx = gains if identity_pool else gains[:, rx]
        topk_rx = self._topk_table()[:, rx]
        cols = np.arange(rx.size)
        in_tx = np.zeros(n, dtype=bool)

        out_rounds: List[np.ndarray] = []
        out_receivers: List[np.ndarray] = []
        out_senders: List[np.ndarray] = []
        out_sinr: List[np.ndarray] = []

        round_ids_all = np.repeat(np.arange(num_rounds, dtype=np.int64), np.diff(tx_indptr))
        chunk_rounds = max(1, self._BATCH_BLOCK_ELEMENTS // max(n, rx.size))
        for start in range(0, num_rounds, chunk_rounds):
            end = min(num_rounds, start + chunk_rounds)
            lo, hi = int(tx_indptr[start]), int(tx_indptr[end])
            if lo == hi:
                continue
            members_chunk = tx_members[lo:hi]
            # One BLAS product yields every round's per-listener total power.
            membership = np.zeros((end - start, n))
            membership[round_ids_all[lo:hi] - start, members_chunk] = 1.0
            totals = membership @ gains_rx

            for t in range(start, end):
                t_lo, t_hi = int(tx_indptr[t]), int(tx_indptr[t + 1])
                if t_lo == t_hi:
                    continue
                tx_slice = tx_members[t_lo:t_hi]
                in_tx[tx_slice] = True
                present = in_tx[topk_rx]
                first = present.argmax(axis=0)
                senders = topk_rx[first, cols]
                missed = np.flatnonzero(~present[first, cols])
                if missed.size:
                    # No table entry transmits for these listeners: exact
                    # gather over the round's transmitter set.
                    sub = gains[np.ix_(tx_slice, rx[missed])]
                    senders[missed] = tx_slice[sub.argmax(axis=0)]
                in_tx[tx_slice] = False

                best_gain = gains_rx[senders, cols]
                total_power = totals[t - start]
                best_sinr = best_gain / (noise + (total_power - best_gain))
                ok = best_sinr >= threshold
                # Half-duplex: a round's transmitters never receive in it.
                own = pos_in_rx[tx_slice]
                ok[own[own >= 0]] = False
                picked = np.flatnonzero(ok)
                if not picked.size:
                    continue
                out_rounds.append(np.full(picked.size, t, dtype=np.int64))
                out_receivers.append(rx[picked])
                out_senders.append(senders[picked])
                out_sinr.append(best_sinr[picked])

        if not out_rounds:
            return _empty_table(num_rounds)
        return DeliveryTable(
            num_rounds=num_rounds,
            round_ids=np.concatenate(out_rounds),
            receivers=np.concatenate(out_receivers),
            senders=np.concatenate(out_senders),
            sinr=np.concatenate(out_sinr),
        )
