"""Dense-matrix physics backend: precomputed O(n^2) gain matrix.

The historical (and default) backend of the reproduction: at construction it
materializes the full pairwise received-power matrix, after which every round
is a handful of numpy reductions over sub-matrices.  Fastest per round for
deployments that fit in memory (~tens of thousands of nodes); switch to
:class:`~repro.sinr.backends.lazy.LazyBlockBackend` beyond that.

This is also the only backend that supports *metric-only* construction from
a pairwise-distance matrix (the paper's footnote-1 generalization to
bounded-growth metric spaces), since an abstract metric has no positions to
recompute distances from.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..geometry import pairwise_distances
from ..model import NUMERIC_TOLERANCE, SINRParameters
from .base import COLOCATED_GAIN, DeliveryTable, PhysicsBackend, _empty_table


class DenseMatrixBackend(PhysicsBackend):
    """Evaluates SINR receptions from a precomputed dense gain matrix.

    Parameters
    ----------
    positions:
        ``(n, 2)`` array of node coordinates.
    params:
        The :class:`~repro.sinr.model.SINRParameters` of the environment.
    distances:
        Alternatively, a symmetric pairwise-distance matrix (abstract metric).
    gain_dtype:
        Storage dtype of the precomputed gain matrix (``np.float64``, the
        default, or ``np.float32``).  float32 halves the dominant memory
        cost (the gain matrix) at ~1e-7 relative storage rounding; gains
        are computed in float64 before the downcast, ``gain_block`` widens
        back to float64 on gather, and all SINR arithmetic stays float64,
        so the only deviation from the default is the rounding of the
        stored matrix entries (plus float32 accumulation in the batched
        GEMM totals).  Opt-in: reception decisions within ~1e-7 of the
        threshold (or strongest-sender ties within ~1e-7 relative) may
        resolve differently from float64 storage, and the reported SINR of
        very strong receptions (near-colocated senders) carries amplified
        relative error -- the *reciprocal* SINR stays accurate to ~1e-5,
        which is the framing threshold decisions live in.
    """

    def __init__(
        self,
        positions: Optional[np.ndarray],
        params: SINRParameters,
        distances: Optional[np.ndarray] = None,
        gain_dtype: type = np.float64,
    ) -> None:
        super().__init__(params)
        if distances is None:
            if positions is None:
                raise ValueError("either positions or distances must be given")
            positions = np.asarray(positions, dtype=float)
            if positions.ndim != 2 or positions.shape[1] != 2:
                raise ValueError("positions must be an (n, 2) array")
            self._positions: Optional[np.ndarray] = positions
            distances = pairwise_distances(positions)
        else:
            distances = np.asarray(distances, dtype=float)
            if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
                raise ValueError("distances must be a square matrix")
            if not np.allclose(distances, distances.T, atol=1e-9):
                raise ValueError("distances must be symmetric")
            if np.any(distances < -NUMERIC_TOLERANCE):
                raise ValueError("distances must be non-negative")
            self._positions = (
                np.asarray(positions, dtype=float) if positions is not None else None
            )
        gain_dtype = np.dtype(gain_dtype)
        if gain_dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"gain_dtype must be float64 or float32, got {gain_dtype}")
        self._gain_dtype = gain_dtype
        # Co-located distinct nodes would have infinite gain; the clamp keeps
        # arithmetic well defined (reception from a co-located node trivially
        # succeeds when it is the only transmitter).  The clamp must be
        # representable in the storage dtype with headroom for summation, so
        # float32 storage uses its own scaled-down ceiling.
        self._colocated_gain = min(
            COLOCATED_GAIN, float(np.finfo(gain_dtype).max) / 2**8
        )
        self._n = len(distances)
        with np.errstate(divide="ignore"):
            gains = params.power / np.power(distances, params.alpha)
        np.fill_diagonal(gains, 0.0)
        gains[np.isinf(gains)] = self._colocated_gain
        self._gains = gains.astype(gain_dtype, copy=False)
        self._distances = distances
        self._topk: Optional[np.ndarray] = None

    @classmethod
    def from_distance_matrix(
        cls, distances: np.ndarray, params: SINRParameters
    ) -> "DenseMatrixBackend":
        """Backend over an abstract metric given by a pairwise-distance matrix.

        Supports the paper's footnote-1 generalization to bounded-growth
        metric spaces: the SINR rule (Equation 1) only needs distances, not
        coordinates.
        """
        return cls(None, params, distances=distances)

    @property
    def size(self) -> int:
        """Number of nodes in the placement."""
        return self._n

    @property
    def positions(self) -> np.ndarray:
        """Node coordinates (read-only view); unavailable for metric-only backends."""
        if self._positions is None:
            raise ValueError("this engine was built from a distance matrix; no coordinates exist")
        view = self._positions.view()
        view.flags.writeable = False
        return view

    @property
    def distances(self) -> np.ndarray:
        """Pairwise node distances (read-only view)."""
        view = self._distances.view()
        view.flags.writeable = False
        return view

    def distance(self, a: int, b: int) -> float:
        """Distance between nodes ``a`` and ``b``."""
        return float(self._distances[a, b])

    def gain(self, sender: int, receiver: int) -> float:
        """Received power ``P / d(sender, receiver)^alpha`` (direct lookup)."""
        return float(self._gains[sender, receiver])

    def gain_block(self, senders: np.ndarray, receivers: np.ndarray) -> np.ndarray:
        """Gather the requested sub-matrix of the precomputed gain matrix.

        Always float64: with float32 storage the gather widens, so the SINR
        arithmetic downstream is float64 regardless of the storage dtype.
        """
        return self._gains[np.ix_(senders, receivers)].astype(np.float64, copy=False)

    # ------------------------------------------------------------------ #
    # Incremental placement mutation.
    # ------------------------------------------------------------------ #

    def _require_positions(self, operation: str) -> np.ndarray:
        if self._positions is None:
            raise ValueError(
                f"this backend was built from a distance matrix; {operation} needs coordinates"
            )
        return self._positions

    def _gain_rows(self, distances: np.ndarray, row_indices: np.ndarray) -> np.ndarray:
        """Gain rows from a distance block, with the diagonal/clamp conventions.

        ``distances[i, :]`` are the distances of node ``row_indices[i]`` to
        all nodes; the self-pair is zeroed before co-located pairs are
        clamped, exactly as in the constructor.
        """
        with np.errstate(divide="ignore"):
            gains = self._params.power / np.power(distances, self._params.alpha)
        gains[np.arange(len(row_indices)), row_indices] = 0.0
        gains[np.isinf(gains)] = self._colocated_gain
        return gains

    def update_positions(self, indices: np.ndarray, new_xy: np.ndarray) -> None:
        """Move nodes, recomputing only the touched gain/distance rows and columns.

        Cost is O(m * n) for ``m`` moved nodes (plus an O((K + m) * n) patch
        of the cached top-K rank table when one exists) instead of the
        O(n^2) full rebuild -- the speedup
        ``benchmarks/bench_dynamic_incremental.py`` records.
        """
        positions = self._require_positions("update_positions")
        indices, new_xy = self._check_moves(self._n, indices, new_xy)
        if not indices.size:
            return
        positions[indices] = new_xy
        diff = positions[indices][:, None, :] - positions[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        self._distances[indices, :] = dist
        self._distances[:, indices] = dist.T
        gains = self._gain_rows(dist, indices)
        self._gains[indices, :] = gains
        self._gains[:, indices] = gains.T
        if self._topk is not None:
            self._patch_topk(indices)

    def add_nodes(self, new_xy: np.ndarray) -> None:
        """Append nodes: one O(m * n) distance/gain band, no full rebuild."""
        positions = self._require_positions("add_nodes")
        new_xy = np.asarray(new_xy, dtype=float).reshape(-1, 2)
        m = len(new_xy)
        if m == 0:
            return
        old_n, n = self._n, self._n + m
        grown = np.vstack([positions, new_xy])
        diff = new_xy[:, None, :] - grown[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        distances = np.empty((n, n))
        distances[:old_n, :old_n] = self._distances
        distances[old_n:, :] = dist
        distances[:, old_n:] = dist.T
        self._positions = grown
        self._distances = distances
        self._n = n
        gain_band = self._gain_rows(dist, np.arange(old_n, n)).astype(
            self._gain_dtype, copy=False
        )
        gains = np.empty((n, n), dtype=self._gain_dtype)
        gains[:old_n, :old_n] = self._gains
        gains[old_n:, :] = gain_band
        gains[:, old_n:] = gain_band.T
        self._gains = gains
        # The rank table is rebuilt lazily on the next batched evaluation.
        self._topk = None

    def remove_nodes(self, indices: np.ndarray) -> None:
        """Delete nodes and compact the matrices (works for metric-only backends too)."""
        indices = np.asarray(indices, dtype=np.int64).ravel()
        if not indices.size:
            return
        if indices.min() < 0 or indices.max() >= self._n:
            raise ValueError("node index out of range")
        keep = np.setdiff1d(np.arange(self._n), indices)
        if not keep.size:
            raise ValueError("cannot remove every node from a backend")
        if self._positions is not None:
            self._positions = self._positions[keep]
        self._distances = self._distances[np.ix_(keep, keep)]
        self._gains = self._gains[np.ix_(keep, keep)]
        self._n = len(keep)
        self._topk = None

    # ------------------------------------------------------------------ #
    # Columnar schedule evaluation (gemm + top-k fast path).
    # ------------------------------------------------------------------ #

    #: Per-listener strongest-sender table depth.  48 ranks make the
    #: probability that none of a round's transmitters appears in a
    #: listener's table negligible for the selector densities the paper's
    #: schedules use; misses fall back to an exact gather.
    _TOPK_DEPTH = 48

    def _topk_table(self) -> np.ndarray:
        """``(K, n)`` sender indices, per listener column sorted by gain desc.

        Built lazily on the first batched schedule evaluation and reused for
        every subsequent schedule over this placement.  Rationale: the
        strongest transmitter of a round, at listener ``j``, is the
        best-*globally-ranked* member of the transmitter set -- so if any of
        ``j``'s top-K senders transmits, the decoded sender is the first of
        them in rank order, found with one boolean gather instead of an
        argmax over the full gain sub-matrix.
        """
        if self._topk is None:
            # Ties (equal gains, e.g. equidistant or co-located senders) are
            # ranked in arbitrary partition order.  That never changes a
            # reported delivery: with beta > 1 a listener decodes only a
            # *strict* strongest transmitter (two tied maxima bound its SINR
            # below 1), so tied senders are only ever picked for listeners
            # that fail the threshold anyway.
            k = min(self._TOPK_DEPTH, self._n)
            self._topk = self._topk_columns(np.arange(self._n), k)
        return self._topk

    def _topk_columns(self, cols: np.ndarray, k: int) -> np.ndarray:
        """Exact ``(k, len(cols))`` strongest-sender table for the given listeners."""
        identity = len(cols) == self._n and bool(np.array_equal(cols, np.arange(self._n)))
        sub = self._gains if identity else self._gains[:, cols]
        part = np.argpartition(-sub, k - 1, axis=0)[:k]
        part_gains = np.take_along_axis(sub, part, axis=0)
        order = np.argsort(-part_gains, axis=0, kind="stable")
        return np.take_along_axis(part, order, axis=0)

    def _patch_topk(self, moved: np.ndarray) -> None:
        """Patch the cached rank table after the nodes in ``moved`` changed position.

        Columns of *moved listeners* are recomputed exactly (every gain in
        the column changed).  Every other column is patched in place: the
        moved senders (at their new gains) are merged into the column's
        retained entries, and any slot that can no longer be proven exact is
        padded with the weakest provably-exact entry.  The table invariant
        the fast reception path relies on -- every sender absent from a
        column is at most as strong as every entry in it -- is preserved:

        * an absent non-moved sender was already outside the exact top-K, so
          it is bounded by the old K-th gain, which is at most ``gmin`` (the
          weakest retained non-moved entry);
        * an absent moved sender was explicitly compared against the kept
          entries during the merge.

        Padding duplicates an in-table sender, which is harmless to the
        first-present-in-rank-order winner scan.
        """
        topk = self._topk
        k = topk.shape[0]
        moved_mask = np.zeros(self._n, dtype=bool)
        moved_mask[moved] = True
        keep_cols = np.flatnonzero(~moved_mask)
        fresh = [moved]
        if keep_cols.size:
            # Work listener-major ((c, k + m) row-contiguous arrays): the
            # per-column sort below is the hot operation and is several times
            # faster along the last axis.
            retained = np.ascontiguousarray(topk[:, keep_cols].T)  # (c, k)
            stale = moved_mask[retained]  # entries whose gain changed under them
            cand = np.hstack(
                [retained, np.broadcast_to(moved[None, :], (keep_cols.size, len(moved)))]
            )
            cand_gain = self._gains[cand, keep_cols[:, None]]
            # Old occurrences of moved senders are superseded by the appended
            # fresh copies; sink them to the bottom of the ordering.
            cand_gain[:, :k][stale] = -np.inf
            nonmoved_gain = np.where(stale, np.inf, cand_gain[:, :k])
            gmin = nonmoved_gain.min(axis=1)
            # A column whose entries all moved retains no exact anchor.
            wholly_stale = ~np.isfinite(gmin)
            order = np.argsort(-cand_gain, axis=1, kind="stable")[:, :k]
            new_entries = np.take_along_axis(cand, order, axis=1)
            new_gain = np.take_along_axis(cand_gain, order, axis=1)
            unsafe = new_gain < gmin[:, None]  # a suffix of each (sorted) row
            safe_count = k - unsafe.sum(axis=1)
            pad = new_entries[np.arange(keep_cols.size), np.maximum(safe_count - 1, 0)]
            topk[:, keep_cols] = np.where(unsafe, pad[:, None], new_entries).T
            if wholly_stale.any():
                fresh.append(keep_cols[wholly_stale])
        fresh_cols = np.concatenate(fresh)
        topk[:, fresh_cols] = self._topk_columns(fresh_cols, k)

    def receptions_table(
        self,
        tx_indptr: np.ndarray,
        tx_members: np.ndarray,
        listeners: Optional[Sequence[int]] = None,
        *,
        round_batch: Optional[object] = None,
    ) -> DeliveryTable:
        """Columnar schedule evaluation specialized to the dense matrix.

        Two structural shortcuts over the generic chunked path, with
        identical semantics:

        * per-round interference totals for *all* rounds come from one BLAS
          matrix product (0/1 round-membership matrix x gain matrix) instead
          of per-round gather-and-sum;
        * the strongest transmitter per listener is read off the cached
          per-listener top-K rank table (:meth:`_topk_table`); rounds whose
          transmitter set misses a listener's table fall back to an exact
          gather for just those listeners.

        Reported SINR values can differ from the generic path in the last
        ulp (BLAS accumulation order), which is within the documented
        cross-backend tolerance.
        """
        del round_batch  # perf hint for the spatial backend; dense batches via BLAS
        tx_indptr = np.ascontiguousarray(tx_indptr, dtype=np.int64)
        tx_members = np.ascontiguousarray(tx_members, dtype=np.int64)
        num_rounds = len(tx_indptr) - 1
        rx = self._normalize_listeners(listeners)
        if rx.size == 0 or num_rounds == 0 or len(tx_members) == 0:
            return _empty_table(num_rounds)

        n = self._n
        gains = self._gains
        noise = self._params.noise
        threshold = self._params.beta - NUMERIC_TOLERANCE
        pos_in_rx = np.full(n, -1, dtype=np.int64)
        pos_in_rx[rx] = np.arange(rx.size)
        # Gain columns restricted to the listener pool (no copy when the pool
        # is exactly the identity order, the common case for schedule
        # executions; a permuted or partial pool needs the gather).
        identity_pool = rx.size == n and bool(np.array_equal(rx, np.arange(n)))
        gains_rx = gains if identity_pool else gains[:, rx]
        topk_rx = self._topk_table()[:, rx]
        cols = np.arange(rx.size)
        in_tx = np.zeros(n, dtype=bool)

        out_rounds: List[np.ndarray] = []
        out_receivers: List[np.ndarray] = []
        out_senders: List[np.ndarray] = []
        out_sinr: List[np.ndarray] = []

        round_ids_all = np.repeat(np.arange(num_rounds, dtype=np.int64), np.diff(tx_indptr))
        chunk_rounds = max(1, self._BATCH_BLOCK_ELEMENTS // max(n, rx.size))
        for start in range(0, num_rounds, chunk_rounds):
            end = min(num_rounds, start + chunk_rounds)
            lo, hi = int(tx_indptr[start]), int(tx_indptr[end])
            if lo == hi:
                continue
            members_chunk = tx_members[lo:hi]
            # One BLAS product yields every round's per-listener total power.
            # The membership matrix matches the gain storage dtype so a
            # float32 matrix multiplies without an O(n^2) float64 upcast.
            membership = np.zeros((end - start, n), dtype=gains.dtype)
            membership[round_ids_all[lo:hi] - start, members_chunk] = 1.0
            totals = membership @ gains_rx

            for t in range(start, end):
                t_lo, t_hi = int(tx_indptr[t]), int(tx_indptr[t + 1])
                if t_lo == t_hi:
                    continue
                tx_slice = tx_members[t_lo:t_hi]
                in_tx[tx_slice] = True
                present = in_tx[topk_rx]
                first = present.argmax(axis=0)
                senders = topk_rx[first, cols]
                missed = np.flatnonzero(~present[first, cols])
                if missed.size:
                    # No table entry transmits for these listeners: exact
                    # gather over the round's transmitter set.
                    sub = gains[np.ix_(tx_slice, rx[missed])]
                    senders[missed] = tx_slice[sub.argmax(axis=0)]
                in_tx[tx_slice] = False

                # Widen to float64 before the SINR arithmetic so float32
                # storage only contributes its rounding of the stored gains.
                best_gain = gains_rx[senders, cols].astype(np.float64, copy=False)
                total_power = totals[t - start].astype(np.float64, copy=False)
                best_sinr = best_gain / (noise + (total_power - best_gain))
                ok = best_sinr >= threshold
                # Half-duplex: a round's transmitters never receive in it.
                own = pos_in_rx[tx_slice]
                ok[own[own >= 0]] = False
                picked = np.flatnonzero(ok)
                if not picked.size:
                    continue
                out_rounds.append(np.full(picked.size, t, dtype=np.int64))
                out_receivers.append(rx[picked])
                out_senders.append(senders[picked])
                out_sinr.append(best_sinr[picked])

        if not out_rounds:
            return _empty_table(num_rounds)
        return DeliveryTable(
            num_rounds=num_rounds,
            round_ids=np.concatenate(out_rounds),
            receivers=np.concatenate(out_receivers),
            senders=np.concatenate(out_senders),
            sinr=np.concatenate(out_sinr),
        )
