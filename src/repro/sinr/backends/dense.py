"""Dense-matrix physics backend: precomputed O(n^2) gain matrix.

The historical (and default) backend of the reproduction: at construction it
materializes the full pairwise received-power matrix, after which every round
is a handful of numpy reductions over sub-matrices.  Fastest per round for
deployments that fit in memory (~tens of thousands of nodes); switch to
:class:`~repro.sinr.backends.lazy.LazyBlockBackend` beyond that.

This is also the only backend that supports *metric-only* construction from
a pairwise-distance matrix (the paper's footnote-1 generalization to
bounded-growth metric spaces), since an abstract metric has no positions to
recompute distances from.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geometry import pairwise_distances
from ..model import NUMERIC_TOLERANCE, SINRParameters
from .base import PhysicsBackend


class DenseMatrixBackend(PhysicsBackend):
    """Evaluates SINR receptions from a precomputed dense gain matrix.

    Parameters
    ----------
    positions:
        ``(n, 2)`` array of node coordinates.
    params:
        The :class:`~repro.sinr.model.SINRParameters` of the environment.
    distances:
        Alternatively, a symmetric pairwise-distance matrix (abstract metric).
    """

    def __init__(
        self,
        positions: Optional[np.ndarray],
        params: SINRParameters,
        distances: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(params)
        if distances is None:
            if positions is None:
                raise ValueError("either positions or distances must be given")
            positions = np.asarray(positions, dtype=float)
            if positions.ndim != 2 or positions.shape[1] != 2:
                raise ValueError("positions must be an (n, 2) array")
            self._positions: Optional[np.ndarray] = positions
            distances = pairwise_distances(positions)
        else:
            distances = np.asarray(distances, dtype=float)
            if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
                raise ValueError("distances must be a square matrix")
            if not np.allclose(distances, distances.T, atol=1e-9):
                raise ValueError("distances must be symmetric")
            if np.any(distances < -NUMERIC_TOLERANCE):
                raise ValueError("distances must be non-negative")
            self._positions = (
                np.asarray(positions, dtype=float) if positions is not None else None
            )
        self._n = len(distances)
        with np.errstate(divide="ignore"):
            gains = params.power / np.power(distances, params.alpha)
        np.fill_diagonal(gains, 0.0)
        # Co-located distinct nodes would have infinite gain; clamp to a huge
        # finite value so that arithmetic stays well defined (reception from a
        # co-located node trivially succeeds when it is the only transmitter).
        gains[np.isinf(gains)] = np.finfo(float).max / (self._n + 1)
        self._gains = gains
        self._distances = distances

    @classmethod
    def from_distance_matrix(
        cls, distances: np.ndarray, params: SINRParameters
    ) -> "DenseMatrixBackend":
        """Backend over an abstract metric given by a pairwise-distance matrix.

        Supports the paper's footnote-1 generalization to bounded-growth
        metric spaces: the SINR rule (Equation 1) only needs distances, not
        coordinates.
        """
        return cls(None, params, distances=distances)

    @property
    def size(self) -> int:
        """Number of nodes in the placement."""
        return self._n

    @property
    def positions(self) -> np.ndarray:
        """Node coordinates (read-only view); unavailable for metric-only backends."""
        if self._positions is None:
            raise ValueError("this engine was built from a distance matrix; no coordinates exist")
        view = self._positions.view()
        view.flags.writeable = False
        return view

    @property
    def distances(self) -> np.ndarray:
        """Pairwise node distances (read-only view)."""
        view = self._distances.view()
        view.flags.writeable = False
        return view

    def distance(self, a: int, b: int) -> float:
        """Distance between nodes ``a`` and ``b``."""
        return float(self._distances[a, b])

    def gain(self, sender: int, receiver: int) -> float:
        """Received power ``P / d(sender, receiver)^alpha`` (direct lookup)."""
        return float(self._gains[sender, receiver])

    def gain_block(self, senders: np.ndarray, receivers: np.ndarray) -> np.ndarray:
        """Gather the requested sub-matrix of the precomputed gain matrix."""
        return self._gains[np.ix_(senders, receivers)]
