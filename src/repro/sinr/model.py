"""SINR model parameters.

The paper (Section 1.1) fixes the following parameters of the physical
(SINR) model:

* ``alpha`` -- the path-loss exponent, ``alpha > 2``;
* ``beta``  -- the SINR reception threshold, ``beta > 1``;
* ``noise`` -- the ambient noise ``N > 0``;
* ``power`` -- the uniform transmission power ``P``;
* ``epsilon`` -- the connectivity parameter of the communication graph:
  nodes at distance at most ``1 - epsilon`` are graph neighbours.

The paper normalizes the transmission range to 1, which forces the relation
``P = N * beta`` (a single transmitter at distance exactly 1 is received with
SINR exactly ``beta`` when nobody else transmits).  :meth:`SINRParameters.
default` follows that normalization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

#: Absolute tolerance used for every SINR-threshold and geometric comparison
#: in the reproduction (reception tests, ball membership, communication-graph
#: edges, distance-matrix validation).  Centralized here so that the physics
#: backends, the geometry helpers and the network builders all agree on what
#: "equal up to floating-point noise" means.
NUMERIC_TOLERANCE: float = 1e-12


@dataclass(frozen=True)
class SINRParameters:
    """Immutable container for the physical-model parameters.

    Instances are hashable and can be shared freely between the network,
    the simulator and the algorithms.  All algorithms in :mod:`repro.core`
    receive the parameters through the network object, mirroring the paper's
    assumption that every node knows ``P, alpha, beta, epsilon, N``.
    """

    alpha: float = 3.0
    beta: float = 1.5
    noise: float = 1.0
    epsilon: float = 0.2
    power: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.alpha <= 2:
            raise ValueError(f"path-loss exponent alpha must exceed 2, got {self.alpha}")
        if self.beta <= 1:
            raise ValueError(f"SINR threshold beta must exceed 1, got {self.beta}")
        if self.noise <= 0:
            raise ValueError(f"ambient noise must be positive, got {self.noise}")
        if not 0 < self.epsilon < 1:
            raise ValueError(f"epsilon must lie in (0, 1), got {self.epsilon}")
        if self.power <= 0:
            # Normalize the transmission range to 1: P = N * beta.
            object.__setattr__(self, "power", self.noise * self.beta)

    @classmethod
    def default(cls) -> "SINRParameters":
        """Return the default parameter set used throughout the test suite."""
        return cls()

    @property
    def transmission_range(self) -> float:
        """Maximal distance at which an isolated transmitter can be heard.

        Solves ``P / d^alpha / noise = beta`` for ``d``.
        """
        return (self.power / (self.noise * self.beta)) ** (1.0 / self.alpha)

    @property
    def communication_radius(self) -> float:
        """Edge threshold of the communication graph: ``(1 - epsilon) * range``."""
        return (1.0 - self.epsilon) * self.transmission_range

    def with_epsilon(self, epsilon: float) -> "SINRParameters":
        """Return a copy with a different connectivity parameter."""
        return replace(self, epsilon=epsilon)

    def with_alpha(self, alpha: float) -> "SINRParameters":
        """Return a copy with a different path-loss exponent."""
        return replace(self, alpha=alpha)

    def received_power(self, distance: float) -> float:
        """Signal strength ``P / d^alpha`` of a transmitter at ``distance``."""
        if distance <= 0:
            raise ValueError("distance must be positive")
        return self.power / distance**self.alpha

    def min_signal_for_reception(self, interference: float) -> float:
        """Minimal received power needed to beat ``interference`` plus noise."""
        return self.beta * (self.noise + interference)

    def max_reception_distance(self, interference: float) -> float:
        """Largest distance at which a message survives a given interference."""
        return (self.power / self.min_signal_for_reception(interference)) ** (1.0 / self.alpha)

    def gadget_interference_budget(self) -> float:
        """The constant ``nu`` of Lemma 13: ``P/(4 eps)^alpha / (N + nu) = beta``.

        Solving for ``nu`` gives the maximal external interference under which
        the lower-bound gadget still behaves as in the single-gadget analysis.
        """
        nu = self.power / ((4.0 * self.epsilon) ** self.alpha * self.beta) - self.noise
        return max(nu, 0.0)

    def describe(self) -> str:
        """Human-readable one-line summary (used by example scripts)."""
        return (
            f"SINR(alpha={self.alpha}, beta={self.beta}, noise={self.noise}, "
            f"P={self.power:.3f}, eps={self.epsilon}, range={self.transmission_range:.3f})"
        )


def log_star(value: float) -> int:
    """Iterated logarithm ``log* x`` (base 2), as used in the paper's bounds."""
    if value < 0:
        raise ValueError("log* is undefined for negative values")
    count = 0
    current = float(value)
    while current > 1.0:
        current = math.log2(current)
        count += 1
    return count
