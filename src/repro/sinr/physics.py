"""SINR reception physics (Equation 1) -- compatibility surface.

The reception logic lives in the pluggable backends of
:mod:`repro.sinr.backends`: the shared semantics in
:class:`~repro.sinr.backends.base.PhysicsBackend`, the dense O(n^2) gain
matrix in :class:`~repro.sinr.backends.dense.DenseMatrixBackend`, and the
O(n)-memory on-demand variant in
:class:`~repro.sinr.backends.lazy.LazyBlockBackend`.

This module keeps the historical names importable: :class:`PhysicsEngine`
*is* the dense backend (same constructor, same methods, now with the batched
``receptions_batch`` API inherited from the protocol), and :class:`Reception`
and :func:`successful_links` are unchanged.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .backends.base import PhysicsBackend, Reception, RoundReceptions
from .backends.dense import DenseMatrixBackend


class PhysicsEngine(DenseMatrixBackend):
    """Backwards-compatible name for the default (dense-matrix) backend."""


def successful_links(
    engine: PhysicsBackend, transmitters: Sequence[int]
) -> List[Tuple[int, int]]:
    """Convenience wrapper returning ``(sender, receiver)`` pairs for one round."""
    return [
        (reception.sender, receiver)
        for receiver, reception in engine.receptions(transmitters).items()
    ]


__all__ = [
    "PhysicsBackend",
    "PhysicsEngine",
    "Reception",
    "RoundReceptions",
    "successful_links",
]
