"""SINR reception physics (Equation 1 of the paper).

Given node positions, a set of concurrent transmitters and the model
parameters, this module decides which listeners successfully receive which
message.  Because the SINR threshold ``beta`` exceeds 1, at most one
transmitter can be decoded by any listener in any round; the engine exploits
that to return a single sender per receiver.

The implementation is fully vectorized: a :class:`PhysicsEngine` precomputes
the pairwise received-power (gain) matrix once per network and then evaluates
each round with a handful of numpy reductions, which keeps multi-thousand
round executions fast enough for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .geometry import pairwise_distances
from .model import SINRParameters


@dataclass(frozen=True)
class Reception:
    """Outcome of one listener in one round."""

    receiver: int
    sender: int
    sinr: float


class PhysicsEngine:
    """Evaluates SINR receptions for a fixed node placement.

    Parameters
    ----------
    positions:
        ``(n, 2)`` array of node coordinates.
    params:
        The :class:`~repro.sinr.model.SINRParameters` of the environment.
    """

    def __init__(
        self,
        positions: Optional[np.ndarray],
        params: SINRParameters,
        distances: Optional[np.ndarray] = None,
    ) -> None:
        self._params = params
        if distances is None:
            if positions is None:
                raise ValueError("either positions or distances must be given")
            positions = np.asarray(positions, dtype=float)
            if positions.ndim != 2 or positions.shape[1] != 2:
                raise ValueError("positions must be an (n, 2) array")
            self._positions: Optional[np.ndarray] = positions
            distances = pairwise_distances(positions)
        else:
            distances = np.asarray(distances, dtype=float)
            if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
                raise ValueError("distances must be a square matrix")
            if not np.allclose(distances, distances.T, atol=1e-9):
                raise ValueError("distances must be symmetric")
            if np.any(distances < -1e-12):
                raise ValueError("distances must be non-negative")
            self._positions = (
                np.asarray(positions, dtype=float) if positions is not None else None
            )
        self._n = len(distances)
        with np.errstate(divide="ignore"):
            gains = params.power / np.power(distances, params.alpha)
        np.fill_diagonal(gains, 0.0)
        # Co-located distinct nodes would have infinite gain; clamp to a huge
        # finite value so that arithmetic stays well defined (reception from a
        # co-located node trivially succeeds when it is the only transmitter).
        gains[np.isinf(gains)] = np.finfo(float).max / (self._n + 1)
        self._gains = gains
        self._distances = distances

    @classmethod
    def from_distance_matrix(
        cls, distances: np.ndarray, params: SINRParameters
    ) -> "PhysicsEngine":
        """Engine over an abstract metric given by a pairwise-distance matrix.

        Supports the paper's footnote-1 generalization to bounded-growth
        metric spaces: the SINR rule (Equation 1) only needs distances, not
        coordinates.
        """
        return cls(None, params, distances=distances)

    @property
    def size(self) -> int:
        """Number of nodes in the placement."""
        return self._n

    @property
    def params(self) -> SINRParameters:
        """The SINR parameters in force."""
        return self._params

    @property
    def positions(self) -> np.ndarray:
        """Node coordinates (read-only view); unavailable for metric-only engines."""
        if self._positions is None:
            raise ValueError("this engine was built from a distance matrix; no coordinates exist")
        view = self._positions.view()
        view.flags.writeable = False
        return view

    @property
    def distances(self) -> np.ndarray:
        """Pairwise node distances (read-only view)."""
        view = self._distances.view()
        view.flags.writeable = False
        return view

    def distance(self, a: int, b: int) -> float:
        """Distance between nodes ``a`` and ``b``."""
        return float(self._distances[a, b])

    def gain(self, sender: int, receiver: int) -> float:
        """Received power ``P / d(sender, receiver)^alpha``."""
        return float(self._gains[sender, receiver])

    def sinr(self, sender: int, receiver: int, transmitters: Iterable[int]) -> float:
        """SINR of ``sender`` at ``receiver`` for a given transmitter set."""
        transmitters = set(transmitters)
        if sender not in transmitters:
            raise ValueError("sender must be among the transmitters")
        if receiver == sender:
            return 0.0
        signal = self._gains[sender, receiver]
        interference = sum(
            self._gains[w, receiver] for w in transmitters if w not in (sender, receiver)
        )
        return float(signal / (self._params.noise + interference))

    def interference_at(self, receiver: int, transmitters: Iterable[int]) -> float:
        """Total interference power at ``receiver`` from ``transmitters``."""
        total = 0.0
        for w in transmitters:
            if w != receiver:
                total += self._gains[w, receiver]
        return float(total)

    def receptions(
        self,
        transmitters: Sequence[int],
        listeners: Optional[Sequence[int]] = None,
    ) -> Dict[int, Reception]:
        """Compute, per listener, the (unique) successfully decoded sender.

        A node that transmits in a round cannot receive in the same round
        (half-duplex radios, as in the paper).  Listeners default to all
        non-transmitting nodes.
        """
        transmitters = list(dict.fromkeys(int(t) for t in transmitters))
        if not transmitters:
            return {}
        tx = np.array(transmitters, dtype=int)
        tx_set = set(transmitters)
        if listeners is None:
            listener_ids = [i for i in range(self._n) if i not in tx_set]
        else:
            listener_ids = [int(v) for v in listeners if int(v) not in tx_set]
        if not listener_ids:
            return {}
        rx = np.array(listener_ids, dtype=int)

        # gains_sub[i, j] = received power at listener rx[j] from transmitter tx[i]
        gains_sub = self._gains[np.ix_(tx, rx)]
        total_power = gains_sub.sum(axis=0)
        # For each (transmitter, listener) pair the interference is the total
        # received power minus the candidate's own contribution.
        interference = total_power[None, :] - gains_sub
        sinr = gains_sub / (self._params.noise + interference)
        best_idx = np.argmax(sinr, axis=0)
        best_sinr = sinr[best_idx, np.arange(len(rx))]

        result: Dict[int, Reception] = {}
        threshold = self._params.beta
        for j, receiver in enumerate(listener_ids):
            value = float(best_sinr[j])
            if value >= threshold - 1e-12:
                sender = int(tx[best_idx[j]])
                result[receiver] = Reception(receiver=receiver, sender=sender, sinr=value)
        return result

    def hears_alone(self, sender: int, receiver: int) -> bool:
        """Whether ``receiver`` hears ``sender`` when nobody else transmits."""
        if sender == receiver:
            return False
        return self._gains[sender, receiver] / self._params.noise >= self._params.beta - 1e-12

    def reception_matrix(self, transmitters: Sequence[int]) -> np.ndarray:
        """Boolean matrix ``M[i, j]``: listener ``j`` decodes transmitter ``transmitters[i]``.

        Mostly useful for analysis and tests; the simulator itself uses
        :meth:`receptions`.
        """
        transmitters = list(dict.fromkeys(int(t) for t in transmitters))
        matrix = np.zeros((len(transmitters), self._n), dtype=bool)
        outcome = self.receptions(transmitters)
        index_of = {t: i for i, t in enumerate(transmitters)}
        for receiver, reception in outcome.items():
            matrix[index_of[reception.sender], receiver] = True
        return matrix


def successful_links(
    engine: PhysicsEngine, transmitters: Sequence[int]
) -> List[Tuple[int, int]]:
    """Convenience wrapper returning ``(sender, receiver)`` pairs for one round."""
    return [
        (reception.sender, receiver)
        for receiver, reception in engine.receptions(transmitters).items()
    ]
