"""Shared uid -> dense-index translation used by both network flavours.

:class:`~repro.sinr.network.WirelessNetwork` and
:class:`~repro.sinr.metric.MetricNetwork` expose the same identifier surface
(``indices_of`` and friends); the vectorized lookup-table variants live here
so the range/validation logic exists exactly once.
"""

from __future__ import annotations

import numpy as np


def build_uid_lookup(uid_array: np.ndarray, id_space: int) -> np.ndarray:
    """``(id_space + 1,)`` array mapping uid -> dense index (-1 if absent)."""
    lookup = np.full(id_space + 1, -1, dtype=np.int64)
    lookup[uid_array] = np.arange(len(uid_array), dtype=np.int64)
    return lookup


def translate_uids(uids: np.ndarray, lookup: np.ndarray, id_space: int) -> np.ndarray:
    """Vectorized uid -> index translation; raises ``KeyError`` on unknown uids."""
    uids = np.ascontiguousarray(uids, dtype=np.int64)
    if uids.size and (uids.min() < 1 or uids.max() > id_space):
        bad = uids[(uids < 1) | (uids > id_space)][0]
        raise KeyError(int(bad))
    indices = lookup[uids]
    if uids.size and indices.min() < 0:
        raise KeyError(int(uids[indices < 0][0]))
    return indices
