"""Abstract-metric networks: the paper's footnote-1 generalization.

Footnote 1 of the paper notes that all results carry over from the Euclidean
plane to *bounded-growth metric spaces* with the same asymptotic bounds.  The
algorithms in :mod:`repro.core` never read coordinates -- they only consume a
network's shared knowledge (``id_space``, ``delta_bound``, SINR parameters)
and its physics engine -- so supporting arbitrary metrics only needs a
network object built from a pairwise-distance matrix.

:class:`MetricNetwork` provides exactly the protocol-facing surface of
:class:`~repro.sinr.network.WirelessNetwork` (nodes, ID lookups, physics,
communication graph, density) without positions; geometry-based validation
(cluster radii and the like) does not apply to it, but the growth-bound check
:func:`doubling_dimension_estimate` lets tests confirm a metric qualifies as
bounded-growth before the theorems are expected to hold.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

from .backends.dense import DenseMatrixBackend
from .identifiers import build_uid_lookup, translate_uids
from .model import NUMERIC_TOLERANCE, SINRParameters
from .node import Node


class MetricNetwork:
    """An ad hoc network over an abstract (bounded-growth) metric.

    Parameters
    ----------
    distances:
        Symmetric ``(n, n)`` matrix of pairwise distances, zero diagonal.
    params:
        SINR parameters.
    uids, id_space, delta_bound:
        As for :class:`~repro.sinr.network.WirelessNetwork`.
    """

    def __init__(
        self,
        distances: Sequence[Sequence[float]],
        params: Optional[SINRParameters] = None,
        uids: Optional[Sequence[int]] = None,
        id_space: Optional[int] = None,
        delta_bound: Optional[int] = None,
    ) -> None:
        self._params = params or SINRParameters.default()
        matrix = np.asarray(distances, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("distances must be a square matrix")
        n = len(matrix)
        if n == 0:
            raise ValueError("a network needs at least one node")
        if not np.allclose(np.diag(matrix), 0.0, atol=1e-9):
            raise ValueError("the distance of a node to itself must be zero")

        if uids is None:
            uids = list(range(1, n + 1))
        uids = [int(u) for u in uids]
        if len(uids) != n or len(set(uids)) != n or min(uids) <= 0:
            raise ValueError("uids must be distinct positive integers, one per node")
        if id_space is None:
            id_space = max(8, 4 * n, max(uids))
        if id_space < max(uids):
            raise ValueError("id_space must be at least the largest node ID")

        self._physics = DenseMatrixBackend.from_distance_matrix(matrix, self._params)
        self._distances = matrix
        self._nodes: List[Node] = [
            Node(uid=uid, index=i, position=(float("nan"), float("nan"))) for i, uid in enumerate(uids)
        ]
        self._uid_to_index: Dict[int, int] = {node.uid: node.index for node in self._nodes}
        self._uid_array = np.array(uids, dtype=int)
        self._uid_lookup: Optional[np.ndarray] = None
        self._id_space = int(id_space)
        self._graph = self._build_communication_graph()
        if delta_bound is None:
            delta_bound = self.density()
        self._delta_bound = max(1, int(delta_bound))

    # ------------------------------------------------------------------ #
    # Shared knowledge / simulator-facing surface (same as WirelessNetwork).
    # ------------------------------------------------------------------ #

    @property
    def params(self) -> SINRParameters:
        """The SINR parameters, known to every node."""
        return self._params

    @property
    def id_space(self) -> int:
        """The bound ``N`` on node identifiers."""
        return self._id_space

    @property
    def delta_bound(self) -> int:
        """The density/degree bound ``Delta`` known to every node."""
        return self._delta_bound

    @property
    def size(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def uids(self) -> List[int]:
        """All node IDs, in index order."""
        return [node.uid for node in self._nodes]

    @property
    def physics(self) -> DenseMatrixBackend:
        """The SINR physics backend over the abstract metric (dense only:
        a metric-only placement has no positions to recompute blocks from)."""
        return self._physics

    @property
    def nodes(self) -> List[Node]:
        """The node objects, in index order."""
        return self._nodes

    def node(self, uid: int) -> Node:
        """The node with identifier ``uid``."""
        return self._nodes[self._uid_to_index[uid]]

    def index_of(self, uid: int) -> int:
        """Dense index of the node with identifier ``uid``."""
        return self._uid_to_index[uid]

    def uid_of(self, index: int) -> int:
        """Identifier of the node at dense index ``index``."""
        return self._nodes[index].uid

    @property
    def uid_array(self) -> np.ndarray:
        """Node identifiers as an index-aligned array (read-only view)."""
        view = self._uid_array.view()
        view.flags.writeable = False
        return view

    def indices_of(self, uids) -> np.ndarray:
        """Dense indices of the given identifiers, as an index array."""
        table = self._uid_to_index
        return np.fromiter((table[uid] for uid in uids), dtype=int)

    @property
    def uid_index_lookup(self) -> np.ndarray:
        """``(id_space + 1,)`` array mapping uid -> dense index (-1 if absent)."""
        if self._uid_lookup is None:
            self._uid_lookup = build_uid_lookup(self._uid_array, self._id_space)
        return self._uid_lookup

    def indices_of_array(self, uids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`indices_of` for an integer uid array."""
        return translate_uids(uids, self.uid_index_lookup, self._id_space)

    # ------------------------------------------------------------------ #
    # Metric / graph accessors.
    # ------------------------------------------------------------------ #

    def distance(self, uid_a: int, uid_b: int) -> float:
        """Metric distance between two nodes (by ID)."""
        return float(self._distances[self._uid_to_index[uid_a], self._uid_to_index[uid_b]])

    @property
    def communication_graph(self) -> nx.Graph:
        """The communication graph (edges at distance at most ``1 - eps``)."""
        return self._graph

    def neighbors(self, uid: int) -> List[int]:
        """Communication-graph neighbours of ``uid``."""
        return sorted(self._graph.neighbors(uid))

    def degree(self, uid: int) -> int:
        """Communication-graph degree of ``uid``."""
        return int(self._graph.degree[uid])

    def max_degree(self) -> int:
        """Largest communication-graph degree."""
        return max((d for _, d in self._graph.degree()), default=0)

    def density(self) -> int:
        """Largest number of nodes within transmission range of any node."""
        radius = self._params.transmission_range
        counts = (self._distances <= radius + NUMERIC_TOLERANCE).sum(axis=1)
        return int(counts.max())

    def is_connected(self) -> bool:
        """Whether the communication graph is connected."""
        return nx.is_connected(self._graph) if self.size > 1 else True

    def diameter_hops(self, source_uid: Optional[int] = None) -> int:
        """Hop diameter (or the eccentricity of ``source_uid``)."""
        if self.size == 1:
            return 0
        if source_uid is not None:
            lengths = nx.single_source_shortest_path_length(self._graph, source_uid)
            return max(lengths.values())
        if not nx.is_connected(self._graph):
            raise ValueError("diameter of a disconnected communication graph is undefined")
        return nx.diameter(self._graph)

    def bfs_layers(self, source_uid: int) -> Dict[int, int]:
        """Hop distances from ``source_uid``."""
        return dict(nx.single_source_shortest_path_length(self._graph, source_uid))

    # ------------------------------------------------------------------ #
    # Cluster bookkeeping (same surface as WirelessNetwork).
    # ------------------------------------------------------------------ #

    def cluster_assignment(self) -> Dict[int, Optional[int]]:
        """Mapping ``uid -> cluster`` for all nodes."""
        return {node.uid: node.cluster for node in self._nodes}

    def set_cluster_assignment(self, assignment: Dict[int, int]) -> None:
        """Install a cluster assignment (``uid -> cluster``)."""
        for uid, cluster in assignment.items():
            self.node(uid).cluster = int(cluster)

    def reset_protocol_state(self) -> None:
        """Clear per-execution node state."""
        for node in self._nodes:
            node.reset_protocol_state()

    def _build_communication_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(node.uid for node in self._nodes)
        radius = self._params.communication_radius
        n = self.size
        for i in range(n):
            for j in range(i + 1, n):
                if self._distances[i, j] <= radius + NUMERIC_TOLERANCE:
                    graph.add_edge(self._nodes[i].uid, self._nodes[j].uid)
        return graph

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"MetricNetwork(n={self.size}, N={self.id_space}, Delta={self.delta_bound}, "
            f"max_degree={self.max_degree()}, connected={self.is_connected()})"
        )


def doubling_dimension_estimate(distances: np.ndarray, radii: Optional[Sequence[float]] = None) -> float:
    """Crude growth-bound estimate of a finite metric.

    For each node and each radius ``r`` in ``radii`` it compares the number of
    nodes within ``2r`` against the number within ``r``; the base-2 logarithm
    of the worst ratio is an upper estimate of the doubling dimension.  The
    paper's results assume this is O(1) ("bounded-growth metric spaces").
    """
    distances = np.asarray(distances, dtype=float)
    if radii is None:
        positive = distances[distances > 0]
        if positive.size == 0:
            return 0.0
        base = float(np.median(positive))
        radii = [base / 2.0, base, 2.0 * base]
    worst = 1.0
    for r in radii:
        inner = (distances <= r + NUMERIC_TOLERANCE).sum(axis=1).astype(float)
        outer = (distances <= 2.0 * r + NUMERIC_TOLERANCE).sum(axis=1).astype(float)
        ratios = outer / np.maximum(inner, 1.0)
        worst = max(worst, float(ratios.max()))
    return float(np.log2(worst))
