"""Strongly selective families (ssf).

A family ``S = (S_1, ..., S_m)`` of subsets of ``[N]`` is an ``(N, k)``-ssf if
for every ``X`` of size at most ``k`` and every ``x`` in ``X`` some set of the
family intersects ``X`` exactly in ``{x}`` (Section 3.1 of the paper, citing
Clementi, Monti and Silvestri).

Two constructions are provided:

* :func:`prime_residue_ssf` -- the classical deterministic construction from
  residues modulo a set of primes.  For any ``k`` distinct IDs in ``[N]``, two
  of them can collide modulo at most ``log_p N`` primes, so taking enough
  primes above ``k * ceil(log N)`` guarantees that each element of ``X`` is
  isolated modulo some prime.  The resulting size is
  ``O(k^2 log^2 N / log(k log N))``.
* :func:`greedy_random_ssf` -- a seeded randomized construction with an
  explicit verifier, mirroring the probabilistic-method existence proofs of
  the paper.  It produces shorter families for the small parameter ranges
  used in tests and experiments.

Every family is represented by :class:`TransmissionSchedule`, which is the
object the simulator consumes (round ``t`` -> set of IDs allowed to
transmit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np


def primes_up_to(limit: int) -> List[int]:
    """All primes ``<= limit`` by a simple sieve."""
    if limit < 2:
        return []
    sieve = np.ones(limit + 1, dtype=bool)
    sieve[:2] = False
    for p in range(2, int(limit**0.5) + 1):
        if sieve[p]:
            sieve[p * p :: p] = False
    return [int(p) for p in np.nonzero(sieve)[0]]


def first_primes_at_least(count: int, lower: int) -> List[int]:
    """The first ``count`` primes that are ``>= lower``."""
    if count <= 0:
        return []
    found: List[int] = []
    limit = max(lower * 2, 16)
    while len(found) < count:
        candidates = [p for p in primes_up_to(limit) if p >= lower]
        found = candidates[:count]
        limit *= 2
    return found


@dataclass(frozen=True)
class TransmissionSchedule:
    """A finite sequence of transmitter sets over the ID space ``[N]``.

    ``rounds[t]`` is the set of IDs permitted to transmit in round ``t`` of
    the schedule.  Schedules are immutable and reusable; the simulation layer
    (``repro.simulation.schedule``) knows how to execute them against a
    network, restricted to an arbitrary set of participating nodes.
    """

    id_space: int
    rounds: Tuple[FrozenSet[int], ...]
    name: str = "schedule"

    def __post_init__(self) -> None:
        if self.id_space <= 0:
            raise ValueError("id_space must be positive")
        for r in self.rounds:
            for uid in r:
                if not 1 <= uid <= self.id_space:
                    raise ValueError(f"ID {uid} outside [1, {self.id_space}]")

    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self):
        return iter(self.rounds)

    def transmits_in(self, uid: int, round_index: int) -> bool:
        """Whether node ``uid`` is scheduled to transmit in round ``round_index``."""
        return uid in self.rounds[round_index]

    def rounds_of(self, uid: int) -> List[int]:
        """All round indices in which ``uid`` is scheduled to transmit."""
        return [t for t, r in enumerate(self.rounds) if uid in r]

    def restricted_to(self, ids: Iterable[int]) -> "TransmissionSchedule":
        """The schedule induced on a subset of IDs (other IDs never transmit)."""
        allowed = set(ids)
        return TransmissionSchedule(
            id_space=self.id_space,
            rounds=tuple(frozenset(r & allowed) for r in self.rounds),
            name=f"{self.name}|restricted",
        )

    def repeated(self, times: int) -> "TransmissionSchedule":
        """The schedule concatenated with itself ``times`` times."""
        if times <= 0:
            raise ValueError("times must be positive")
        return TransmissionSchedule(
            id_space=self.id_space, rounds=self.rounds * times, name=f"{self.name}x{times}"
        )

    def concatenated(self, other: "TransmissionSchedule") -> "TransmissionSchedule":
        """This schedule followed by ``other`` (same ID space required)."""
        if other.id_space != self.id_space:
            raise ValueError("cannot concatenate schedules over different ID spaces")
        return TransmissionSchedule(
            id_space=self.id_space,
            rounds=self.rounds + other.rounds,
            name=f"{self.name}+{other.name}",
        )


def round_robin_schedule(id_space: int, ids: Optional[Iterable[int]] = None) -> TransmissionSchedule:
    """One round per ID: the trivial collision-free schedule of length ``N``.

    Used as a baseline (naive TDMA) and as an always-correct fallback in
    tests of higher-level algorithm logic.
    """
    if ids is None:
        ids = range(1, id_space + 1)
    rounds = tuple(frozenset({int(uid)}) for uid in ids)
    return TransmissionSchedule(id_space=id_space, rounds=rounds, name=f"round-robin({id_space})")


def prime_residue_ssf(id_space: int, k: int) -> TransmissionSchedule:
    """Deterministic ``(N, k)``-ssf from residues modulo primes.

    Rounds are indexed by pairs (prime ``p``, residue ``r``); node ``v``
    transmits in round ``(p, r)`` iff ``v mod p == r``.  Any two distinct IDs
    in ``[N]`` agree modulo fewer than ``log_2 N`` primes ``>= 2``, so with
    ``k * ceil(log_2 N) + 1`` primes, for every set ``X`` of size ``<= k`` and
    every ``x`` in ``X`` there is a prime modulo which ``x`` differs from all
    other elements of ``X`` -- the corresponding round selects ``x``.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if id_space <= 1:
        return round_robin_schedule(id_space)
    k = min(k, id_space)
    if k == 1:
        # A single round containing everything selects the unique element.
        return TransmissionSchedule(
            id_space=id_space,
            rounds=(frozenset(range(1, id_space + 1)),),
            name=f"ssf(N={id_space},k=1)",
        )
    needed = (k - 1) * max(1, math.ceil(math.log2(id_space))) + 1
    prime_list = first_primes_at_least(needed, 2)
    rounds: List[FrozenSet[int]] = []
    for p in prime_list:
        for residue in range(min(p, id_space + 1)):
            members = frozenset(v for v in range(1, id_space + 1) if v % p == residue)
            if members:
                rounds.append(members)
    return TransmissionSchedule(
        id_space=id_space, rounds=tuple(rounds), name=f"ssf(N={id_space},k={k})"
    )


def verify_ssf(
    schedule: TransmissionSchedule, k: int, universe: Optional[Sequence[int]] = None
) -> bool:
    """Exhaustively verify the ``(N, k)``-ssf property over ``universe``.

    Exponential in ``k``; intended for tests with small parameters only.
    """
    if universe is None:
        universe = list(range(1, schedule.id_space + 1))
    universe = list(universe)
    for size in range(1, min(k, len(universe)) + 1):
        for subset in combinations(universe, size):
            subset_set = set(subset)
            for x in subset:
                if not any(r & subset_set == {x} for r in schedule.rounds):
                    return False
    return True


def greedy_random_ssf(
    id_space: int,
    k: int,
    seed: int = 0,
    max_rounds: Optional[int] = None,
) -> TransmissionSchedule:
    """Seeded randomized ``(N, k)``-ssf of size ``O(k^2 log N)``.

    Each round includes every ID independently with probability ``1/k``.  The
    number of rounds follows the probabilistic-method bound with a safety
    factor; a fixed seed makes the construction deterministic.  The property
    is not verified here (that would be exponential); tests verify it for
    small instances via :func:`verify_ssf`.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, id_space)
    if k == 1 or id_space == 1:
        return prime_residue_ssf(id_space, k)
    rng = np.random.default_rng(seed)
    if max_rounds is None:
        max_rounds = int(math.ceil(3.0 * math.e * k * k * (math.log(id_space) + 2)))
    rounds: List[FrozenSet[int]] = []
    ids = np.arange(1, id_space + 1)
    for _ in range(max_rounds):
        mask = rng.random(id_space) < (1.0 / k)
        members = frozenset(int(v) for v in ids[mask])
        if members:
            rounds.append(members)
    return TransmissionSchedule(
        id_space=id_space, rounds=tuple(rounds), name=f"random-ssf(N={id_space},k={k},seed={seed})"
    )
