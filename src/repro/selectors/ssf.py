"""Strongly selective families (ssf).

A family ``S = (S_1, ..., S_m)`` of subsets of ``[N]`` is an ``(N, k)``-ssf if
for every ``X`` of size at most ``k`` and every ``x`` in ``X`` some set of the
family intersects ``X`` exactly in ``{x}`` (Section 3.1 of the paper, citing
Clementi, Monti and Silvestri).

Two constructions are provided:

* :func:`prime_residue_ssf` -- the classical deterministic construction from
  residues modulo a set of primes.  For any ``k`` distinct IDs in ``[N]``, two
  of them can collide modulo at most ``log_p N`` primes, so taking enough
  primes above ``k * ceil(log N)`` guarantees that each element of ``X`` is
  isolated modulo some prime.  The resulting size is
  ``O(k^2 log^2 N / log(k log N))``.
* :func:`greedy_random_ssf` -- a seeded randomized construction with an
  explicit verifier, mirroring the probabilistic-method existence proofs of
  the paper.  It produces shorter families for the small parameter ranges
  used in tests and experiments.

Every family is represented by :class:`TransmissionSchedule`, which is the
object the simulator consumes (round ``t`` -> set of IDs allowed to
transmit).  Since the columnar-pipeline rework the schedule is stored in CSR
form (:class:`~repro.selectors._csr.RoundFamily`): a round-pointer array plus
a concatenated member-index array, with a cached per-node inverse index.  The
``rounds`` attribute still exposes the historical tuple-of-frozensets view,
materialized lazily, so set-based callers keep working unchanged.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ._csr import RoundFamily

# --------------------------------------------------------------------- #
# Incremental prime sieve.
#
# ``first_primes_at_least`` used to re-sieve from scratch on every limit
# doubling; the module now keeps one growing sieve (as a sorted prime list)
# and every query slices it, extending by segmented sieving only when the
# cached range is too short.
# --------------------------------------------------------------------- #

_PRIMES: List[int] = [2, 3, 5, 7, 11, 13]
_SIEVE_LIMIT: int = 13


def _extend_sieve(limit: int) -> None:
    """Grow the cached prime list to cover ``[2, limit]`` (segmented sieve)."""
    global _SIEVE_LIMIT
    if limit <= _SIEVE_LIMIT:
        return
    # Base primes up to sqrt(limit) must be available first.
    root = int(math.isqrt(limit))
    if root > _SIEVE_LIMIT:
        _extend_sieve(root)
    lo, hi = _SIEVE_LIMIT + 1, limit
    segment = np.ones(hi - lo + 1, dtype=bool)
    for p in _PRIMES:
        if p * p > hi:
            break
        start = max(p * p, ((lo + p - 1) // p) * p)
        segment[start - lo :: p] = False
    _PRIMES.extend(int(v) for v in np.nonzero(segment)[0] + lo)
    _SIEVE_LIMIT = limit


def primes_up_to(limit: int) -> List[int]:
    """All primes ``<= limit`` (served from the growing cached sieve)."""
    if limit < 2:
        return []
    if limit > _SIEVE_LIMIT:
        _extend_sieve(max(limit, 2 * _SIEVE_LIMIT))
    return _PRIMES[: bisect_right(_PRIMES, limit)]


def first_primes_at_least(count: int, lower: int) -> List[int]:
    """The first ``count`` primes that are ``>= lower``.

    The cached sieve is extended by doubling until it holds enough primes;
    queries never re-sieve a range that is already covered.
    """
    if count <= 0:
        return []
    limit = max(_SIEVE_LIMIT, lower * 2, 16)
    while True:
        _extend_sieve(limit)
        start = bisect_left(_PRIMES, lower)
        if len(_PRIMES) - start >= count:
            return _PRIMES[start : start + count]
        limit *= 2


class TransmissionSchedule:
    """A finite sequence of transmitter sets over the ID space ``[N]``.

    ``rounds[t]`` is the set of IDs permitted to transmit in round ``t`` of
    the schedule.  Schedules are immutable and reusable; the simulation layer
    (``repro.simulation.schedule``) knows how to execute them against a
    network, restricted to an arbitrary set of participating nodes.

    Internally the schedule is columnar (CSR round-pointer + member-index
    arrays, see :class:`~repro.selectors._csr.RoundFamily`); ``rounds`` is a
    lazily materialized frozenset view kept for API compatibility.
    """

    __slots__ = ("id_space", "name", "_family")

    def __init__(
        self,
        id_space: int,
        rounds: Iterable[Iterable[int]] = (),
        name: str = "schedule",
        *,
        family: Optional[RoundFamily] = None,
    ) -> None:
        if id_space <= 0:
            raise ValueError("id_space must be positive")
        if family is None:
            family = RoundFamily.from_sets(rounds)
        if len(family.members) and not (
            1 <= family.min_value() and family.max_value() <= id_space
        ):
            bad = family.min_value() if family.min_value() < 1 else family.max_value()
            raise ValueError(f"ID {bad} outside [1, {id_space}]")
        self.id_space = int(id_space)
        self.name = name
        self._family = family

    # ------------------------------------------------------------------ #
    # Columnar accessors (the hot path of the schedule runners).
    # ------------------------------------------------------------------ #

    @property
    def family(self) -> RoundFamily:
        """The CSR representation of this schedule."""
        return self._family

    def member_table(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(indptr, members)``: round-pointer and member-index arrays."""
        return self._family.indptr, self._family.members

    def rounds_of_array(self, uid: int) -> np.ndarray:
        """Rounds admitting ``uid`` as a sorted array (cached inverse index)."""
        return self._family.rounds_of(uid)

    def inverse_table(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR inverse index ``(indptr_by_uid, rounds)`` (cached)."""
        return self._family.inverse()

    # ------------------------------------------------------------------ #
    # Legacy (set-view) API.
    # ------------------------------------------------------------------ #

    @property
    def rounds(self) -> Tuple[FrozenSet[int], ...]:
        """The tuple-of-frozensets view of the schedule (lazy, cached)."""
        return self._family.frozensets()

    def __len__(self) -> int:
        return len(self._family)

    def __iter__(self):
        return iter(self.rounds)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransmissionSchedule):
            return NotImplemented
        return (
            self.id_space == other.id_space
            and self.name == other.name
            and self._family == other._family
        )

    def __hash__(self) -> int:
        return hash((self.id_space, self.name, self._family))

    def __repr__(self) -> str:
        return (
            f"TransmissionSchedule(id_space={self.id_space}, "
            f"rounds={len(self._family)}, name={self.name!r})"
        )

    def transmits_in(self, uid: int, round_index: int) -> bool:
        """Whether node ``uid`` is scheduled to transmit in round ``round_index``."""
        return self._family.contains(uid, round_index)

    def rounds_of(self, uid: int) -> List[int]:
        """All round indices in which ``uid`` is scheduled to transmit."""
        return self._family.rounds_of(uid).tolist()

    def restricted_to(self, ids: Iterable[int]) -> "TransmissionSchedule":
        """The schedule induced on a subset of IDs (other IDs never transmit)."""
        return TransmissionSchedule(
            id_space=self.id_space,
            family=self._family.restrict_to(ids, self.id_space),
            name=f"{self.name}|restricted",
        )

    def repeated(self, times: int) -> "TransmissionSchedule":
        """The schedule concatenated with itself ``times`` times."""
        return TransmissionSchedule(
            id_space=self.id_space,
            family=self._family.tile(times),
            name=f"{self.name}x{times}",
        )

    def concatenated(self, other: "TransmissionSchedule") -> "TransmissionSchedule":
        """This schedule followed by ``other`` (same ID space required)."""
        if other.id_space != self.id_space:
            raise ValueError("cannot concatenate schedules over different ID spaces")
        return TransmissionSchedule(
            id_space=self.id_space,
            family=self._family.concat(other._family),
            name=f"{self.name}+{other.name}",
        )


def round_robin_schedule(id_space: int, ids: Optional[Iterable[int]] = None) -> TransmissionSchedule:
    """One round per ID: the trivial collision-free schedule of length ``N``.

    Used as a baseline (naive TDMA) and as an always-correct fallback in
    tests of higher-level algorithm logic.
    """
    if ids is None:
        members = np.arange(1, id_space + 1, dtype=np.int64)
    else:
        members = np.fromiter((int(uid) for uid in ids), dtype=np.int64)
    family = RoundFamily(np.arange(len(members) + 1, dtype=np.int64), members)
    return TransmissionSchedule(id_space=id_space, family=family, name=f"round-robin({id_space})")


def prime_residue_ssf(id_space: int, k: int) -> TransmissionSchedule:
    """Deterministic ``(N, k)``-ssf from residues modulo primes.

    Rounds are indexed by pairs (prime ``p``, residue ``r``); node ``v``
    transmits in round ``(p, r)`` iff ``v mod p == r``.  Any two distinct IDs
    in ``[N]`` agree modulo fewer than ``log_2 N`` primes ``>= 2``, so with
    ``k * ceil(log_2 N) + 1`` primes, for every set ``X`` of size ``<= k`` and
    every ``x`` in ``X`` there is a prime modulo which ``x`` differs from all
    other elements of ``X`` -- the corresponding round selects ``x``.

    Residue classes are built columnarly: one ``argsort`` of ``ids mod p``
    per prime groups all members at once instead of scanning the whole ID
    space once per (prime, residue) pair.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if id_space <= 1:
        return round_robin_schedule(id_space)
    k = min(k, id_space)
    if k == 1:
        # A single round containing everything selects the unique element.
        return TransmissionSchedule(
            id_space=id_space,
            family=RoundFamily(
                np.array([0, id_space], dtype=np.int64),
                np.arange(1, id_space + 1, dtype=np.int64),
            ),
            name=f"ssf(N={id_space},k=1)",
        )
    needed = (k - 1) * max(1, math.ceil(math.log2(id_space))) + 1
    prime_list = first_primes_at_least(needed, 2)
    ids = np.arange(1, id_space + 1, dtype=np.int64)
    member_parts: List[np.ndarray] = []
    count_parts: List[np.ndarray] = []
    for p in prime_list:
        residues = ids % p
        # Stable sort groups each residue class; within a class the ids stay
        # ascending, matching the per-round sorted-members invariant.
        order = np.argsort(residues, kind="stable")
        counts = np.bincount(residues, minlength=min(p, id_space + 1))
        member_parts.append(ids[order])
        count_parts.append(counts[counts > 0])
    counts_all = np.concatenate(count_parts)
    indptr = np.zeros(len(counts_all) + 1, dtype=np.int64)
    np.cumsum(counts_all, out=indptr[1:])
    family = RoundFamily(indptr, np.concatenate(member_parts))
    return TransmissionSchedule(
        id_space=id_space, family=family, name=f"ssf(N={id_space},k={k})"
    )


def verify_ssf(
    schedule: TransmissionSchedule, k: int, universe: Optional[Sequence[int]] = None
) -> bool:
    """Exhaustively verify the ``(N, k)``-ssf property over ``universe``.

    Exponential in ``k``; intended for tests with small parameters only.
    """
    if universe is None:
        universe = list(range(1, schedule.id_space + 1))
    universe = list(universe)
    for size in range(1, min(k, len(universe)) + 1):
        for subset in combinations(universe, size):
            subset_set = set(subset)
            for x in subset:
                if not any(r & subset_set == {x} for r in schedule.rounds):
                    return False
    return True


#: Cap on the number of mask elements materialized per chunk by the seeded
#: randomized constructions (rows x id_space booleans per chunk).
_CONSTRUCTION_CHUNK_ELEMENTS = 8_000_000


def sampled_family(
    rng: np.random.Generator,
    id_space: int,
    length: int,
    probability,
    drop_empty: bool,
    streams: int = 1,
) -> List[RoundFamily]:
    """``streams`` interleaved Bernoulli round families, drawn columnarly.

    Draws ``length * streams`` rows of ``id_space`` uniforms in row-major
    order -- the exact RNG stream a round-by-round loop would consume -- and
    converts them to CSR in chunks.  ``streams > 1`` yields families whose
    rows alternate in the draw order (used by the wcss, which samples a node
    row and a cluster row per round); ``probability`` may be a scalar or one
    admission probability per stream.
    """
    ids = np.arange(1, id_space + 1, dtype=np.int64)
    thresholds = np.broadcast_to(np.asarray(probability, dtype=float), (streams,))
    rows_per_chunk = max(1, _CONSTRUCTION_CHUNK_ELEMENTS // max(1, id_space * streams))
    parts: List[List[RoundFamily]] = [[] for _ in range(streams)]
    done = 0
    while done < length:
        chunk = min(rows_per_chunk, length - done)
        uniforms = rng.random((chunk, streams, id_space))
        for s in range(streams):
            sub = uniforms[:, s, :] < thresholds[s]
            if drop_empty:
                sub = sub[sub.any(axis=1)]
            parts[s].append(RoundFamily.from_mask(sub, ids))
        done += chunk
    out: List[RoundFamily] = []
    for s in range(streams):
        family = parts[s][0]
        for nxt in parts[s][1:]:
            family = family.concat(nxt)
        out.append(family)
    return out


def greedy_random_ssf(
    id_space: int,
    k: int,
    seed: int = 0,
    max_rounds: Optional[int] = None,
) -> TransmissionSchedule:
    """Seeded randomized ``(N, k)``-ssf of size ``O(k^2 log N)``.

    Each round includes every ID independently with probability ``1/k``.  The
    number of rounds follows the probabilistic-method bound with a safety
    factor; a fixed seed makes the construction deterministic.  The property
    is not verified here (that would be exponential); tests verify it for
    small instances via :func:`verify_ssf`.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, id_space)
    if k == 1 or id_space == 1:
        return prime_residue_ssf(id_space, k)
    rng = np.random.default_rng(seed)
    if max_rounds is None:
        max_rounds = int(math.ceil(3.0 * math.e * k * k * (math.log(id_space) + 2)))
    (family,) = sampled_family(rng, id_space, max_rounds, 1.0 / k, drop_empty=True)
    return TransmissionSchedule(
        id_space=id_space, family=family, name=f"random-ssf(N={id_space},k={k},seed={seed})"
    )
