"""Witnessed strong selectors (wss) -- Lemma 2 of the paper.

A sequence ``S = (S_1, ..., S_m)`` of subsets of ``[N]`` is an ``(N, k)``-wss
if for every ``X`` of size ``k``, every ``x`` in ``X`` and every ``y`` outside
``X`` there is a set ``S_i`` with ``S_i ∩ X = {x}`` and ``y ∈ S_i`` -- the
element ``y`` *witnesses* the selection of ``x``.

The paper proves existence of ``(N, k)``-wss of size ``O(k^3 log N)`` by the
probabilistic method and never gives an explicit construction, so we follow
the same recipe with a fixed seed: each round includes every ID independently
with probability ``1/k``.  The resulting schedule is deterministic (the seed
is part of the construction), reproducible, and carries the selection
property with overwhelming probability; :func:`verify_wss` checks it
exhaustively for the small instances used in unit tests, and
:func:`witness_rounds` lets property-based tests check the property for the
specific sets that actually occur in a simulation.

The ``size_factor`` knob trades schedule length against the probability of a
missing witness; see DESIGN.md §5 (substitution 2 and 3).

Construction and the witness/selection queries are columnar: the rounds are
sampled as boolean admission matrices (exact RNG-stream compatible with a
round-by-round loop) and the queries intersect the schedule's cached inverse
index instead of scanning every round.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .ssf import TransmissionSchedule, sampled_family


def wss_length(id_space: int, k: int, size_factor: float = 1.0, faithful: bool = False) -> int:
    """Number of rounds used by :func:`random_wss`.

    With ``faithful=True`` the paper's ``O(k^3 log N)`` bound is used; the
    default is the compact ``O(k^2 log N)`` length which suffices (with the
    fixed seed) for the node sets arising in laptop-scale simulations.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    log_n = math.log(max(id_space, 2))
    if faithful:
        base = 3.0 * math.e * (k**3) * (log_n + 2.0)
    else:
        base = 1.5 * math.e * (k**2) * (log_n + 2.0)
    return max(1, int(math.ceil(size_factor * base)))


def random_wss(
    id_space: int,
    k: int,
    seed: int = 0,
    size_factor: float = 1.0,
    faithful: bool = False,
    length: Optional[int] = None,
) -> TransmissionSchedule:
    """Seeded probabilistic-method construction of an ``(N, k)``-wss."""
    if id_space <= 0:
        raise ValueError("id_space must be positive")
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, max(id_space, 1))
    rng = np.random.default_rng(seed)
    if length is None:
        length = wss_length(id_space, k, size_factor=size_factor, faithful=faithful)
    probability = 1.0 / max(k, 2)
    (family,) = sampled_family(rng, id_space, length, probability, drop_empty=False)
    return TransmissionSchedule(
        id_space=id_space,
        family=family,
        name=f"wss(N={id_space},k={k},seed={seed})",
    )


def witness_rounds(
    schedule: TransmissionSchedule, selected: int, witness: int, blockers: Iterable[int]
) -> List[int]:
    """Rounds in which ``selected`` transmits, ``witness`` transmits and no blocker does.

    ``blockers`` should be ``X \\ {selected}``; an empty result means the
    witnessed selection property fails for this particular triple.

    Answered from the schedule's inverse index: an intersection of the two
    sorted round lists minus the union of the blockers' round lists.
    """
    both = np.intersect1d(
        schedule.rounds_of_array(selected),
        schedule.rounds_of_array(witness),
        assume_unique=True,
    )
    blocked = _blocked_rounds(schedule, blockers, exclude=selected)
    return np.setdiff1d(both, blocked, assume_unique=True).tolist()


def selection_rounds(
    schedule: TransmissionSchedule, selected: int, blockers: Iterable[int]
) -> List[int]:
    """Rounds in which ``selected`` transmits and no blocker does (plain ssf selection)."""
    own = schedule.rounds_of_array(selected)
    blocked = _blocked_rounds(schedule, blockers, exclude=selected)
    return np.setdiff1d(own, blocked, assume_unique=True).tolist()


def _blocked_rounds(
    schedule: TransmissionSchedule, blockers: Iterable[int], exclude: int
) -> np.ndarray:
    """Sorted union of the rounds admitting any blocker (``exclude`` dropped)."""
    rounds = [
        schedule.rounds_of_array(b) for b in set(blockers) - {exclude}
    ]
    if not rounds:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(rounds))


def verify_wss(
    schedule: TransmissionSchedule,
    k: int,
    universe: Optional[Sequence[int]] = None,
    witnesses: Optional[Sequence[int]] = None,
) -> bool:
    """Exhaustively verify the witnessed strong selection property.

    Exponential in ``k``; restrict ``universe`` (the candidate ``X`` elements)
    and ``witnesses`` (the candidate ``y`` elements) to keep unit tests fast.
    """
    if universe is None:
        universe = list(range(1, schedule.id_space + 1))
    universe = list(universe)
    if witnesses is None:
        witnesses = universe
    for subset in combinations(universe, min(k, len(universe))):
        subset_set = set(subset)
        for x in subset:
            for y in witnesses:
                if y in subset_set:
                    continue
                if not witness_rounds(schedule, x, y, subset_set):
                    return False
    return True


def missing_witness_triples(
    schedule: TransmissionSchedule,
    sets: Iterable[Tuple[Set[int], int, int]],
) -> List[Tuple[Set[int], int, int]]:
    """Return the ``(X, x, y)`` triples for which the wss property fails.

    Used by property-based tests to check the property only for the sets that
    actually arise in a given simulation instead of all ``N^k`` subsets.
    """
    failures = []
    for subset, x, y in sets:
        if x not in subset or y in subset:
            raise ValueError("expected x in X and y outside X")
        if not witness_rounds(schedule, x, y, subset):
            failures.append((subset, x, y))
    return failures
