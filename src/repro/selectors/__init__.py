"""Combinatorial transmission schedules: ssf, witnessed selectors, MIS helpers."""

from .mis import (
    greedy_mis,
    is_independent_set,
    is_maximal_independent_set,
    iterated_local_minima_mis,
    local_minima,
)
from .ssf import (
    TransmissionSchedule,
    first_primes_at_least,
    greedy_random_ssf,
    prime_residue_ssf,
    primes_up_to,
    round_robin_schedule,
    verify_ssf,
)
from .wcss import (
    ClusterAwareSchedule,
    cluster_witness_rounds,
    missing_cluster_witnesses,
    random_wcss,
    verify_wcss,
    wcss_length,
)
from .wss import (
    missing_witness_triples,
    random_wss,
    selection_rounds,
    verify_wss,
    witness_rounds,
    wss_length,
)

__all__ = [
    "ClusterAwareSchedule",
    "TransmissionSchedule",
    "cluster_witness_rounds",
    "first_primes_at_least",
    "greedy_mis",
    "greedy_random_ssf",
    "is_independent_set",
    "is_maximal_independent_set",
    "iterated_local_minima_mis",
    "local_minima",
    "missing_cluster_witnesses",
    "missing_witness_triples",
    "prime_residue_ssf",
    "primes_up_to",
    "random_wcss",
    "random_wss",
    "round_robin_schedule",
    "selection_rounds",
    "verify_ssf",
    "verify_wcss",
    "verify_wss",
    "wcss_length",
    "witness_rounds",
    "wss_length",
]
