"""Columnar (CSR) storage for round families.

Every selector schedule in this package is, structurally, a finite sequence
of subsets of an integer universe ("round ``t`` admits these IDs").  The
historical representation -- one ``frozenset`` per round -- makes every
schedule operation (restriction, inverse lookup, execution) a Python-level
loop, which dominates wall-clock time long before the SINR physics does.

:class:`RoundFamily` stores the same object in CSR form: a ``members`` array
holding the concatenated, per-round-sorted member values and an ``indptr``
round-pointer array of length ``rounds + 1`` (round ``t`` owns
``members[indptr[t]:indptr[t + 1]]``).  All schedule algebra (restriction,
repetition, concatenation, inverse index) is a handful of NumPy array
operations, and the frozenset view is materialized lazily only for callers
that still want Python sets.

The *inverse index* is the same data sorted the other way: for each value,
the sorted array of rounds admitting it (again in CSR form over the value
universe).  It is computed once per family, cached, and shared by every
``rounds_of`` query -- this is what turns the proximity-graph filtering
phase into a sparse-matrix intersection instead of a candidates x rounds
scan.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Tuple

import numpy as np


class RoundFamily:
    """An immutable sequence of integer sets in CSR (columnar) form.

    Parameters
    ----------
    indptr:
        ``(rounds + 1,)`` int array; round ``t`` owns the member slice
        ``members[indptr[t]:indptr[t + 1]]``.
    members:
        Concatenated member values, sorted ascending *within* each round and
        free of duplicates within a round.
    """

    __slots__ = ("indptr", "members", "_frozensets", "_inverse", "_round_ids")

    def __init__(self, indptr: np.ndarray, members: np.ndarray) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.members = np.ascontiguousarray(members, dtype=np.int64)
        if self.indptr.ndim != 1 or len(self.indptr) == 0:
            raise ValueError("indptr must be a non-empty 1-D array")
        if int(self.indptr[-1]) != len(self.members):
            raise ValueError("indptr[-1] must equal len(members)")
        self._frozensets: Optional[Tuple[FrozenSet[int], ...]] = None
        self._inverse: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._round_ids: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Constructors.
    # ------------------------------------------------------------------ #

    @classmethod
    def from_sets(cls, rounds: Iterable[Iterable[int]]) -> "RoundFamily":
        """Build from an iterable of per-round member collections."""
        per_round: List[np.ndarray] = []
        for r in rounds:
            arr = np.fromiter((int(v) for v in r), dtype=np.int64)
            arr = np.unique(arr)  # sorted + deduplicated
            per_round.append(arr)
        counts = np.fromiter((len(a) for a in per_round), dtype=np.int64, count=len(per_round))
        indptr = np.zeros(len(per_round) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        members = (
            np.concatenate(per_round) if per_round else np.empty(0, dtype=np.int64)
        )
        return cls(indptr, members)

    @classmethod
    def from_mask(cls, mask: np.ndarray, values: np.ndarray) -> "RoundFamily":
        """Build from a ``(rounds, len(values))`` boolean admission matrix.

        Row ``t`` of ``mask`` selects the members of round ``t`` out of
        ``values`` (which must be sorted ascending for the per-round member
        ordering invariant to hold).
        """
        rows, cols = np.nonzero(mask)
        counts = np.bincount(rows, minlength=mask.shape[0]).astype(np.int64)
        indptr = np.zeros(mask.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, np.asarray(values, dtype=np.int64)[cols])

    @classmethod
    def empty(cls, rounds: int = 0) -> "RoundFamily":
        """A family of ``rounds`` empty rounds."""
        return cls(np.zeros(rounds + 1, dtype=np.int64), np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------ #
    # Basic accessors.
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.indptr) - 1

    def round(self, t: int) -> np.ndarray:
        """Members of round ``t`` (sorted ascending; zero-copy view)."""
        return self.members[self.indptr[t] : self.indptr[t + 1]]

    def counts(self) -> np.ndarray:
        """Number of members per round."""
        return np.diff(self.indptr)

    def round_ids(self) -> np.ndarray:
        """Round index of every entry of ``members`` (cached)."""
        if self._round_ids is None:
            self._round_ids = np.repeat(
                np.arange(len(self), dtype=np.int64), np.diff(self.indptr)
            )
        return self._round_ids

    def max_value(self) -> int:
        """Largest member value (0 for an all-empty family)."""
        return int(self.members.max()) if len(self.members) else 0

    def min_value(self) -> int:
        """Smallest member value (0 for an all-empty family)."""
        return int(self.members.min()) if len(self.members) else 0

    def contains(self, value: int, t: int) -> bool:
        """Whether ``value`` is a member of round ``t`` (binary search)."""
        lo, hi = int(self.indptr[t]), int(self.indptr[t + 1])
        pos = int(np.searchsorted(self.members[lo:hi], value))
        return pos < hi - lo and int(self.members[lo + pos]) == value

    def frozensets(self) -> Tuple[FrozenSet[int], ...]:
        """The legacy tuple-of-frozensets view (materialized once, cached)."""
        if self._frozensets is None:
            members = self.members.tolist()
            indptr = self.indptr.tolist()
            self._frozensets = tuple(
                frozenset(members[indptr[t] : indptr[t + 1]]) for t in range(len(self))
            )
        return self._frozensets

    # ------------------------------------------------------------------ #
    # Inverse index (value -> sorted rounds).
    # ------------------------------------------------------------------ #

    def inverse(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR inverse index ``(indptr_by_value, rounds)`` over ``[0, max]``.

        ``rounds[indptr_by_value[v]:indptr_by_value[v + 1]]`` is the sorted
        array of rounds admitting value ``v``.  Computed once and cached.
        """
        if self._inverse is None:
            size = self.max_value() + 1
            counts = np.bincount(self.members, minlength=size).astype(np.int64)
            indptr = np.zeros(size + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            # Stable sort by member keeps the round-major order, so rounds
            # come out ascending within each value.
            order = np.argsort(self.members, kind="stable")
            self._inverse = (indptr, self.round_ids()[order])
        return self._inverse

    def rounds_of(self, value: int) -> np.ndarray:
        """Sorted rounds admitting ``value`` (zero-copy view into the inverse)."""
        indptr, rounds = self.inverse()
        if value < 0 or value + 1 >= len(indptr):
            return np.empty(0, dtype=np.int64)
        return rounds[indptr[value] : indptr[value + 1]]

    # ------------------------------------------------------------------ #
    # Algebra.
    # ------------------------------------------------------------------ #

    def restrict_to_mask(self, keep: np.ndarray) -> "RoundFamily":
        """Family induced by dropping members ``v`` with ``not keep[v]``.

        ``keep`` is a boolean lookup array indexed by member value; it must
        cover ``max_value()``.
        """
        flags = keep[self.members]
        counts = np.bincount(self.round_ids()[flags], minlength=len(self)).astype(np.int64)
        indptr = np.zeros(len(self) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return RoundFamily(indptr, self.members[flags])

    def restrict_to(self, values: Iterable[int], universe: int) -> "RoundFamily":
        """Family induced on ``values`` (members outside are dropped)."""
        keep = np.zeros(universe + 1, dtype=bool)
        vals = np.fromiter((int(v) for v in values), dtype=np.int64)
        vals = vals[(vals >= 0) & (vals <= universe)]
        keep[vals] = True
        return self.restrict_to_mask(keep)

    def tile(self, times: int) -> "RoundFamily":
        """This family repeated ``times`` times back to back."""
        if times <= 0:
            raise ValueError("times must be positive")
        counts = np.tile(np.diff(self.indptr), times)
        indptr = np.zeros(times * len(self) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return RoundFamily(indptr, np.tile(self.members, times))

    def concat(self, other: "RoundFamily") -> "RoundFamily":
        """This family followed by ``other``."""
        counts = np.concatenate([np.diff(self.indptr), np.diff(other.indptr)])
        indptr = np.zeros(len(self) + len(other) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return RoundFamily(indptr, np.concatenate([self.members, other.members]))

    # ------------------------------------------------------------------ #
    # Comparison.
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoundFamily):
            return NotImplemented
        return bool(
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.members, other.members)
        )

    def __hash__(self) -> int:
        return hash((self.indptr.tobytes(), self.members.tobytes()))


def sorted_lookup(keys: np.ndarray, probes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Binary-search ``probes`` in the sorted ``keys`` array.

    Returns ``(found, positions)``: a boolean hit mask and, for every probe,
    a position that is safe to gather from ``keys``-aligned value arrays
    (clipped in-bounds; only meaningful where ``found`` is true).  This is
    the membership-probe idiom shared by the cluster-gate of the schedule
    runner and the proximity-graph filtering join.
    """
    if not len(keys):
        return np.zeros(len(probes), dtype=bool), np.zeros(len(probes), dtype=np.int64)
    positions = np.searchsorted(keys, probes)
    clipped = np.minimum(positions, len(keys) - 1)
    return (positions < len(keys)) & (keys[clipped] == probes), clipped


def expand_slices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start_i, start_i + count_i)`` index arrays.

    The vectorized "gather these CSR slices" primitive: the result indexes a
    data array to pull out ``counts[i]`` consecutive entries from position
    ``starts[i]``, for all ``i``, without a Python loop.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    which = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
    return starts[which] + offsets
