"""Maximal independent sets on bounded-degree graphs.

The paper uses the Schneider-Wattenhofer ``O(log* n)`` MIS algorithm for
growth-bounded graphs [34] as a black box on constant-degree proximity
graphs.  Per DESIGN.md §5 (substitution 1) we replace it with the
deterministic *iterated-local-minima* rule, which yields a maximal
independent set with the same output guarantees:

    repeat until every node is decided:
        every undecided node whose ID is smaller than the IDs of all its
        undecided neighbours joins the MIS;
        every undecided neighbour of a new MIS node becomes non-MIS.

On a graph with maximum degree ``d`` the rule terminates after at most
``n`` iterations and, on the constant-degree proximity graphs the paper
feeds it, after a small number of iterations in practice.  The functions
here operate on explicit adjacency structures; the *distributed* driver that
realizes each iteration through SINR message exchange lives in
:mod:`repro.core.proximity`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple


def greedy_mis(adjacency: Mapping[int, Iterable[int]]) -> Set[int]:
    """Sequential greedy MIS by increasing ID (reference implementation)."""
    selected: Set[int] = set()
    blocked: Set[int] = set()
    for node in sorted(adjacency):
        if node in blocked:
            continue
        selected.add(node)
        blocked.update(adjacency[node])
    return selected


def iterated_local_minima_mis(
    adjacency: Mapping[int, Iterable[int]],
    max_iterations: int | None = None,
) -> Tuple[Set[int], int]:
    """Iterated-local-minima MIS; returns the set and the number of iterations.

    Equivalent in output to :func:`greedy_mis` (both produce the
    lexicographically-first MIS) but computable with purely local decisions,
    which is what the distributed driver needs.
    """
    neighbours: Dict[int, Set[int]] = {int(v): {int(u) for u in adj} for v, adj in adjacency.items()}
    undecided: Set[int] = set(neighbours)
    in_mis: Set[int] = set()
    iterations = 0
    limit = max_iterations if max_iterations is not None else len(neighbours) + 1
    while undecided and iterations < limit:
        iterations += 1
        joiners = {
            v
            for v in undecided
            if all(u not in undecided or v < u for u in neighbours[v])
        }
        if not joiners:
            break
        in_mis |= joiners
        removed = set(joiners)
        for v in joiners:
            removed |= neighbours[v] & undecided
        undecided -= removed
    return in_mis, iterations


def local_minima(adjacency: Mapping[int, Iterable[int]]) -> Set[int]:
    """Nodes whose ID is smaller than all of their neighbours' IDs.

    This is the independent-set rule used by the *clustered* variant of the
    sparsification algorithm (Section 4.1): it is independent but not
    necessarily maximal, which is all Lemma 8 needs.
    """
    return {
        int(v)
        for v, adj in adjacency.items()
        if all(int(v) < int(u) for u in adj)
    }


def is_independent_set(adjacency: Mapping[int, Iterable[int]], candidate: Iterable[int]) -> bool:
    """Whether ``candidate`` is an independent set of the graph."""
    candidate_set = {int(v) for v in candidate}
    for v in candidate_set:
        for u in adjacency.get(v, ()):  # type: ignore[arg-type]
            if int(u) in candidate_set and int(u) != v:
                return False
    return True


def is_maximal_independent_set(
    adjacency: Mapping[int, Iterable[int]], candidate: Iterable[int]
) -> bool:
    """Whether ``candidate`` is a *maximal* independent set of the graph."""
    candidate_set = {int(v) for v in candidate}
    if not is_independent_set(adjacency, candidate_set):
        return False
    for v in adjacency:
        if int(v) in candidate_set:
            continue
        if not any(int(u) in candidate_set for u in adjacency[v]):
            return False
    return True
