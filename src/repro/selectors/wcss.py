"""Witnessed cluster-aware strong selectors (wcss) -- Lemma 3 of the paper.

An ``(N, k, l)``-wcss is a sequence of subsets of ``[N] x [N]`` (pairs of node
ID and cluster ID) such that for every cluster ``phi``, every conflict set
``C`` of at most ``l`` other clusters, every ``X`` of at most ``k`` nodes of
cluster ``phi``, every ``x`` in ``X`` and every ``y`` of cluster ``phi``
outside ``X``, some round selects ``x`` from ``X``, contains ``y`` as a
witness, and is *free* of all clusters in ``C``.

Following the paper's probabilistic construction (proof of Lemma 3) each
round is sampled in two independent stages: first a set of *allowed clusters*
(each cluster admitted with probability ``1/l``), then a set of *allowed node
IDs* (each admitted with probability ``1/k``).  A clustered node ``(v, phi)``
transmits in a round iff ``phi`` is allowed **and** ``v`` is allowed.  This
product form is exactly the event structure analysed in the paper and admits
a compact representation: two ID sets per round instead of a subset of
``[N]^2``.

As with the wss, the construction is seeded (hence deterministic and shared
by all nodes), the faithful ``O((k+l) l k^2 log N)`` length is available via
``faithful=True``, and a compact default keeps simulations laptop-scale; see
DESIGN.md §5.

Both stages are stored columnarly (CSR round families, see
:mod:`repro.selectors._csr`); ``node_rounds`` / ``cluster_rounds`` remain
available as lazy frozenset views, and :meth:`ClusterAwareSchedule.rounds_of`
answers "in which rounds does node ``v`` of cluster ``phi`` transmit?" from
the cached inverse indexes instead of scanning the schedule.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ._csr import RoundFamily
from .ssf import sampled_family


class ClusterAwareSchedule:
    """A transmission schedule for clustered sets of nodes.

    ``node_rounds[t]`` is the set of node IDs allowed to transmit in round
    ``t`` and ``cluster_rounds[t]`` the set of cluster IDs allowed in round
    ``t``.  A node ``v`` of cluster ``phi`` transmits in round ``t`` iff
    ``v in node_rounds[t]`` and ``phi in cluster_rounds[t]``.
    """

    __slots__ = ("id_space", "name", "_nodes", "_clusters")

    def __init__(
        self,
        id_space: int,
        node_rounds: Iterable[Iterable[int]] = (),
        cluster_rounds: Iterable[Iterable[int]] = (),
        name: str = "wcss",
        *,
        node_family: Optional[RoundFamily] = None,
        cluster_family: Optional[RoundFamily] = None,
    ) -> None:
        if id_space <= 0:
            raise ValueError("id_space must be positive")
        if node_family is None:
            node_family = RoundFamily.from_sets(node_rounds)
        if cluster_family is None:
            cluster_family = RoundFamily.from_sets(cluster_rounds)
        if len(node_family) != len(cluster_family):
            raise ValueError("node_rounds and cluster_rounds must have the same length")
        self.id_space = int(id_space)
        self.name = name
        self._nodes = node_family
        self._clusters = cluster_family

    # ------------------------------------------------------------------ #
    # Columnar accessors.
    # ------------------------------------------------------------------ #

    @property
    def node_family(self) -> RoundFamily:
        """CSR representation of the per-round allowed node IDs."""
        return self._nodes

    @property
    def cluster_family(self) -> RoundFamily:
        """CSR representation of the per-round allowed cluster IDs."""
        return self._clusters

    def node_table(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(indptr, members)`` of the node stage."""
        return self._nodes.indptr, self._nodes.members

    def cluster_table(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(indptr, members)`` of the cluster stage."""
        return self._clusters.indptr, self._clusters.members

    def rounds_of_array(self, uid: int, cluster: int) -> np.ndarray:
        """Sorted rounds in which ``(uid, cluster)`` transmits.

        The intersection of the node inverse index of ``uid`` with the
        cluster inverse index of ``cluster`` -- no per-round scan.
        """
        return np.intersect1d(
            self._nodes.rounds_of(uid),
            self._clusters.rounds_of(cluster),
            assume_unique=True,
        )

    def rounds_of(self, uid: int, cluster: int) -> List[int]:
        """Rounds in which node ``uid`` of cluster ``cluster`` transmits."""
        return self.rounds_of_array(uid, cluster).tolist()

    # ------------------------------------------------------------------ #
    # Legacy (set-view) API.
    # ------------------------------------------------------------------ #

    @property
    def node_rounds(self) -> Tuple[FrozenSet[int], ...]:
        """Per-round allowed node IDs as frozensets (lazy, cached)."""
        return self._nodes.frozensets()

    @property
    def cluster_rounds(self) -> Tuple[FrozenSet[int], ...]:
        """Per-round allowed cluster IDs as frozensets (lazy, cached)."""
        return self._clusters.frozensets()

    def __len__(self) -> int:
        return len(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClusterAwareSchedule):
            return NotImplemented
        return (
            self.id_space == other.id_space
            and self.name == other.name
            and self._nodes == other._nodes
            and self._clusters == other._clusters
        )

    def __hash__(self) -> int:
        return hash((self.id_space, self.name, self._nodes, self._clusters))

    def __repr__(self) -> str:
        return (
            f"ClusterAwareSchedule(id_space={self.id_space}, "
            f"rounds={len(self._nodes)}, name={self.name!r})"
        )

    def transmits_in(self, uid: int, cluster: int, round_index: int) -> bool:
        """Whether node ``uid`` of cluster ``cluster`` transmits in the given round."""
        return self._nodes.contains(uid, round_index) and self._clusters.contains(
            cluster, round_index
        )

    def round_is_free_of(self, round_index: int, clusters: Iterable[int]) -> bool:
        """Whether the round admits none of the given clusters."""
        return not any(self._clusters.contains(c, round_index) for c in clusters)

    def repeated(self, times: int) -> "ClusterAwareSchedule":
        """The schedule concatenated with itself ``times`` times."""
        return ClusterAwareSchedule(
            id_space=self.id_space,
            node_family=self._nodes.tile(times),
            cluster_family=self._clusters.tile(times),
            name=f"{self.name}x{times}",
        )


def wcss_length(
    id_space: int, k: int, l: int, size_factor: float = 1.0, faithful: bool = False
) -> int:
    """Number of rounds used by :func:`random_wcss`.

    The faithful length is the paper's ``O((k + l) l k^2 log N)``; the compact
    default is ``O(l k^2 log N)`` which, with the fixed seed, suffices for the
    cluster configurations arising in our simulations.
    """
    if k <= 0 or l <= 0:
        raise ValueError("k and l must be positive")
    log_n = math.log(max(id_space, 2))
    if faithful:
        base = 3.0 * math.e * (k + l) * l * (k**2) * (log_n + 2.0)
    else:
        base = 1.5 * math.e * l * (k**2) * (log_n + 2.0)
    return max(1, int(math.ceil(size_factor * base)))


def random_wcss(
    id_space: int,
    k: int,
    l: int,
    seed: int = 0,
    size_factor: float = 1.0,
    faithful: bool = False,
    length: Optional[int] = None,
) -> ClusterAwareSchedule:
    """Seeded probabilistic-method construction of an ``(N, k, l)``-wcss.

    The node and cluster stages are drawn in the exact interleaved order a
    round-by-round loop would use (node row, then cluster row, per round), so
    the construction is stream-compatible with the historical one, but the
    masks are converted to CSR columnarly.
    """
    if id_space <= 0:
        raise ValueError("id_space must be positive")
    if k <= 0 or l <= 0:
        raise ValueError("k and l must be positive")
    k = min(k, id_space)
    l = min(l, id_space)
    rng = np.random.default_rng(seed)
    if length is None:
        length = wcss_length(id_space, k, l, size_factor=size_factor, faithful=faithful)
    node_probability = 1.0 / max(k, 2)
    cluster_probability = 1.0 / max(l, 2)
    node_family, cluster_family = sampled_family(
        rng,
        id_space,
        length,
        (node_probability, cluster_probability),
        drop_empty=False,
        streams=2,
    )
    return ClusterAwareSchedule(
        id_space=id_space,
        node_family=node_family,
        cluster_family=cluster_family,
        name=f"wcss(N={id_space},k={k},l={l},seed={seed})",
    )


def cluster_witness_rounds(
    schedule: ClusterAwareSchedule,
    cluster: int,
    selected: int,
    witness: int,
    blockers: Iterable[int],
    conflicts: Iterable[int],
) -> List[int]:
    """Rounds realizing the wcss property for a concrete configuration.

    ``blockers`` are the other members of ``X`` (same cluster as ``selected``)
    and ``conflicts`` the clusters that must stay silent in the round.
    Answered by sorted-array set algebra over the cached inverse indexes.
    """
    nodes = schedule.node_family
    clusters = schedule.cluster_family
    candidate = np.intersect1d(
        schedule.rounds_of_array(selected, cluster),
        nodes.rounds_of(witness),
        assume_unique=True,
    )
    if not len(candidate):
        return []
    blocked: List[np.ndarray] = [
        nodes.rounds_of(b) for b in set(blockers) - {selected}
    ]
    blocked += [clusters.rounds_of(c) for c in set(conflicts) - {cluster}]
    if blocked:
        bad = np.unique(np.concatenate(blocked))
        candidate = np.setdiff1d(candidate, bad, assume_unique=True)
    return candidate.tolist()


def verify_wcss(
    schedule: ClusterAwareSchedule,
    k: int,
    l: int,
    node_universe: Sequence[int],
    cluster_universe: Sequence[int],
) -> bool:
    """Exhaustively verify the wcss property over small universes.

    Exponential in ``k`` and ``l``; intended for unit tests with a handful of
    IDs and clusters only.
    """
    node_universe = list(node_universe)
    cluster_universe = list(cluster_universe)
    for phi in cluster_universe:
        other_clusters = [c for c in cluster_universe if c != phi]
        conflict_sets = list(combinations(other_clusters, min(l, len(other_clusters))))
        if not conflict_sets:
            conflict_sets = [tuple()]
        for conflict in conflict_sets:
            for subset in combinations(node_universe, min(k, len(node_universe))):
                subset_set = set(subset)
                for x in subset:
                    for y in node_universe:
                        if y in subset_set:
                            continue
                        if not cluster_witness_rounds(schedule, phi, x, y, subset_set, conflict):
                            return False
    return True


def missing_cluster_witnesses(
    schedule: ClusterAwareSchedule,
    configurations: Iterable[Tuple[int, Set[int], int, int, Set[int]]],
) -> List[Tuple[int, Set[int], int, int, Set[int]]]:
    """Configurations ``(cluster, X, x, y, conflicts)`` for which the property fails."""
    failures = []
    for cluster, subset, x, y, conflicts in configurations:
        if x not in subset or y in subset:
            raise ValueError("expected x in X and y outside X")
        if not cluster_witness_rounds(schedule, cluster, x, y, subset, conflicts):
            failures.append((cluster, subset, x, y, conflicts))
    return failures
