"""Witnessed cluster-aware strong selectors (wcss) -- Lemma 3 of the paper.

An ``(N, k, l)``-wcss is a sequence of subsets of ``[N] x [N]`` (pairs of node
ID and cluster ID) such that for every cluster ``phi``, every conflict set
``C`` of at most ``l`` other clusters, every ``X`` of at most ``k`` nodes of
cluster ``phi``, every ``x`` in ``X`` and every ``y`` of cluster ``phi``
outside ``X``, some round selects ``x`` from ``X``, contains ``y`` as a
witness, and is *free* of all clusters in ``C``.

Following the paper's probabilistic construction (proof of Lemma 3) each
round is sampled in two independent stages: first a set of *allowed clusters*
(each cluster admitted with probability ``1/l``), then a set of *allowed node
IDs* (each admitted with probability ``1/k``).  A clustered node ``(v, phi)``
transmits in a round iff ``phi`` is allowed **and** ``v`` is allowed.  This
product form is exactly the event structure analysed in the paper and admits
a compact representation: two ID sets per round instead of a subset of
``[N]^2``.

As with the wss, the construction is seeded (hence deterministic and shared
by all nodes), the faithful ``O((k+l) l k^2 log N)`` length is available via
``faithful=True``, and a compact default keeps simulations laptop-scale; see
DESIGN.md §5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np


@dataclass(frozen=True)
class ClusterAwareSchedule:
    """A transmission schedule for clustered sets of nodes.

    ``node_rounds[t]`` is the set of node IDs allowed to transmit in round
    ``t`` and ``cluster_rounds[t]`` the set of cluster IDs allowed in round
    ``t``.  A node ``v`` of cluster ``phi`` transmits in round ``t`` iff
    ``v in node_rounds[t]`` and ``phi in cluster_rounds[t]``.
    """

    id_space: int
    node_rounds: Tuple[FrozenSet[int], ...]
    cluster_rounds: Tuple[FrozenSet[int], ...]
    name: str = "wcss"

    def __post_init__(self) -> None:
        if self.id_space <= 0:
            raise ValueError("id_space must be positive")
        if len(self.node_rounds) != len(self.cluster_rounds):
            raise ValueError("node_rounds and cluster_rounds must have the same length")

    def __len__(self) -> int:
        return len(self.node_rounds)

    def transmits_in(self, uid: int, cluster: int, round_index: int) -> bool:
        """Whether node ``uid`` of cluster ``cluster`` transmits in the given round."""
        return (
            uid in self.node_rounds[round_index]
            and cluster in self.cluster_rounds[round_index]
        )

    def round_is_free_of(self, round_index: int, clusters: Iterable[int]) -> bool:
        """Whether the round admits none of the given clusters."""
        allowed = self.cluster_rounds[round_index]
        return not any(c in allowed for c in clusters)

    def repeated(self, times: int) -> "ClusterAwareSchedule":
        """The schedule concatenated with itself ``times`` times."""
        if times <= 0:
            raise ValueError("times must be positive")
        return ClusterAwareSchedule(
            id_space=self.id_space,
            node_rounds=self.node_rounds * times,
            cluster_rounds=self.cluster_rounds * times,
            name=f"{self.name}x{times}",
        )


def wcss_length(
    id_space: int, k: int, l: int, size_factor: float = 1.0, faithful: bool = False
) -> int:
    """Number of rounds used by :func:`random_wcss`.

    The faithful length is the paper's ``O((k + l) l k^2 log N)``; the compact
    default is ``O(l k^2 log N)`` which, with the fixed seed, suffices for the
    cluster configurations arising in our simulations.
    """
    if k <= 0 or l <= 0:
        raise ValueError("k and l must be positive")
    log_n = math.log(max(id_space, 2))
    if faithful:
        base = 3.0 * math.e * (k + l) * l * (k**2) * (log_n + 2.0)
    else:
        base = 1.5 * math.e * l * (k**2) * (log_n + 2.0)
    return max(1, int(math.ceil(size_factor * base)))


def random_wcss(
    id_space: int,
    k: int,
    l: int,
    seed: int = 0,
    size_factor: float = 1.0,
    faithful: bool = False,
    length: Optional[int] = None,
) -> ClusterAwareSchedule:
    """Seeded probabilistic-method construction of an ``(N, k, l)``-wcss."""
    if id_space <= 0:
        raise ValueError("id_space must be positive")
    if k <= 0 or l <= 0:
        raise ValueError("k and l must be positive")
    k = min(k, id_space)
    l = min(l, id_space)
    rng = np.random.default_rng(seed)
    if length is None:
        length = wcss_length(id_space, k, l, size_factor=size_factor, faithful=faithful)
    ids = np.arange(1, id_space + 1)
    node_probability = 1.0 / max(k, 2)
    cluster_probability = 1.0 / max(l, 2)
    node_rounds: List[FrozenSet[int]] = []
    cluster_rounds: List[FrozenSet[int]] = []
    for _ in range(length):
        node_mask = rng.random(id_space) < node_probability
        cluster_mask = rng.random(id_space) < cluster_probability
        node_rounds.append(frozenset(int(v) for v in ids[node_mask]))
        cluster_rounds.append(frozenset(int(v) for v in ids[cluster_mask]))
    return ClusterAwareSchedule(
        id_space=id_space,
        node_rounds=tuple(node_rounds),
        cluster_rounds=tuple(cluster_rounds),
        name=f"wcss(N={id_space},k={k},l={l},seed={seed})",
    )


def cluster_witness_rounds(
    schedule: ClusterAwareSchedule,
    cluster: int,
    selected: int,
    witness: int,
    blockers: Iterable[int],
    conflicts: Iterable[int],
) -> List[int]:
    """Rounds realizing the wcss property for a concrete configuration.

    ``blockers`` are the other members of ``X`` (same cluster as ``selected``)
    and ``conflicts`` the clusters that must stay silent in the round.
    """
    blocker_set = set(blockers) - {selected}
    conflict_set = set(conflicts) - {cluster}
    rounds: List[int] = []
    for t in range(len(schedule)):
        nodes = schedule.node_rounds[t]
        clusters = schedule.cluster_rounds[t]
        if cluster not in clusters:
            continue
        if conflict_set & clusters:
            continue
        if selected not in nodes or witness not in nodes:
            continue
        if blocker_set & nodes:
            continue
        rounds.append(t)
    return rounds


def verify_wcss(
    schedule: ClusterAwareSchedule,
    k: int,
    l: int,
    node_universe: Sequence[int],
    cluster_universe: Sequence[int],
) -> bool:
    """Exhaustively verify the wcss property over small universes.

    Exponential in ``k`` and ``l``; intended for unit tests with a handful of
    IDs and clusters only.
    """
    node_universe = list(node_universe)
    cluster_universe = list(cluster_universe)
    for phi in cluster_universe:
        other_clusters = [c for c in cluster_universe if c != phi]
        conflict_sets = list(combinations(other_clusters, min(l, len(other_clusters))))
        if not conflict_sets:
            conflict_sets = [tuple()]
        for conflict in conflict_sets:
            for subset in combinations(node_universe, min(k, len(node_universe))):
                subset_set = set(subset)
                for x in subset:
                    for y in node_universe:
                        if y in subset_set:
                            continue
                        if not cluster_witness_rounds(schedule, phi, x, y, subset_set, conflict):
                            return False
    return True


def missing_cluster_witnesses(
    schedule: ClusterAwareSchedule,
    configurations: Iterable[Tuple[int, Set[int], int, int, Set[int]]],
) -> List[Tuple[int, Set[int], int, int, Set[int]]]:
    """Configurations ``(cluster, X, x, y, conflicts)`` for which the property fails."""
    failures = []
    for cluster, subset, x, y, conflicts in configurations:
        if x not in subset or y in subset:
            raise ValueError("expected x in X and y outside X")
        if not cluster_witness_rounds(schedule, cluster, x, y, subset, conflicts):
            failures.append((cluster, subset, x, y, conflicts))
    return failures
