"""Naive deterministic baselines: TDMA round-robin schedules.

The simplest deterministic algorithms in the pure model serve as sanity
anchors for both tables:

* :func:`tdma_local_broadcast` -- every node gets its own round over the ID
  space ``[N]``: ``N`` rounds, always correct, and exactly the ``Theta(n
  log N)``-type behaviour (for ``N = poly(n)``) the paper's deterministic
  competitors without extra features exhibit.
* :func:`tdma_global_broadcast` -- flooding with one round-robin sweep per
  hop layer: ``O(D * N)`` rounds, the natural "no cleverness" upper bound for
  global broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from ..simulation.engine import SINRSimulator
from ..simulation.messages import Message
from ..simulation.schedule import run_round_robin


@dataclass
class TDMALocalBroadcastResult:
    """Outcome of the round-robin local broadcast."""

    delivered: Dict[int, Set[int]] = field(default_factory=dict)
    rounds_used: int = 0

    def completed(self, network) -> bool:
        """Whether every node reached all of its neighbours (always true here)."""
        return all(
            set(network.neighbors(uid)) <= self.delivered.get(uid, set())
            for uid in network.uids
        )


@dataclass
class TDMAGlobalBroadcastResult:
    """Outcome of the layer-by-layer flooding global broadcast."""

    awakened_in_sweep: Dict[int, int] = field(default_factory=dict)
    rounds_used: int = 0
    sweeps: int = 0

    def reached_all(self, network) -> bool:
        """Whether every node received the broadcast message."""
        return set(self.awakened_in_sweep) >= set(network.uids)


def tdma_local_broadcast(
    sim: SINRSimulator, charge_full_id_space: bool = True
) -> TDMALocalBroadcastResult:
    """One private round per node: trivially correct local broadcast.

    With ``charge_full_id_space`` the cost accounts for the full ``N`` rounds
    a node-oblivious TDMA schedule needs (nodes only know the ID space, not
    who is present); the physics is only evaluated for present nodes.
    """
    network = sim.network
    start_round = sim.current_round
    result = TDMALocalBroadcastResult(delivered={uid: set() for uid in network.uids})
    outcome = run_round_robin(sim, network.uids, phase="tdma-local")
    senders, receivers = outcome.delivery_pairs()
    for sender, listener in zip(senders.tolist(), receivers.tolist()):
        result.delivered[sender].add(listener)
    if charge_full_id_space:
        sim.run_silent_rounds(max(0, network.id_space - network.size), phase="tdma-local:idle")
    result.rounds_used = sim.current_round - start_round
    return result


def tdma_global_broadcast(
    sim: SINRSimulator,
    source: int,
    max_sweeps: Optional[int] = None,
    charge_full_id_space: bool = True,
) -> TDMAGlobalBroadcastResult:
    """Flooding: repeat round-robin sweeps; informed nodes retransmit each sweep."""
    network = sim.network
    start_round = sim.current_round
    informed: Set[int] = {source}
    result = TDMAGlobalBroadcastResult(awakened_in_sweep={source: 0})
    if max_sweeps is None:
        max_sweeps = network.size + 1

    sweeps = 0
    while sweeps < max_sweeps:
        sweeps += 1
        outcome = run_round_robin(
            sim,
            sorted(informed),
            message_factory=lambda uid: Message(sender=uid, tag="tdma-flood"),
            phase="tdma-global",
        )
        if charge_full_id_space:
            sim.run_silent_rounds(max(0, network.id_space - len(informed)), phase="tdma-global:idle")
        _, receivers = outcome.delivery_pairs()
        newly = set(receivers.tolist()) - informed
        for uid in newly:
            result.awakened_in_sweep[uid] = sweeps
        if not newly:
            break
        informed |= newly

    result.sweeps = sweeps
    result.rounds_used = sim.current_round - start_round
    return result
