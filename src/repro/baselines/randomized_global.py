"""Randomized global-broadcast baselines (Table 2).

Two comparison points for the global broadcast rows:

* :func:`randomized_global_broadcast_decay` -- a Bar-Yehuda/Goldreich/Itai
  "Decay"-style flood adapted to the SINR setting (the flavour of Daum,
  Gilbert, Kuhn, Newport [10] and Jurdzinski et al. [25]): informed nodes
  repeatedly run a decay sequence of transmission probabilities
  ``1/2, 1/4, ..., 1/Delta``; each decay sweep lets every uninformed node
  with an informed neighbour receive the message with constant probability,
  so ``O(D log n)`` sweeps (``O(D log n log Delta)`` rounds) inform everyone
  with high probability.
* :func:`randomized_global_broadcast_uniform` -- informed nodes transmit
  with fixed probability ``1/Delta`` (the simplest randomized flood), which
  costs ``O(D Delta log n)`` rounds and illustrates why the decay trick
  matters.

As with the local baselines, these are Monte-Carlo comparators used to
regenerate the qualitative ordering of Table 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

from ..simulation.engine import SINRSimulator
from ..simulation.messages import Message


@dataclass
class RandomizedGlobalBroadcastResult:
    """Outcome of a randomized global-broadcast baseline run."""

    awakened_round: Dict[int, int] = field(default_factory=dict)
    rounds_used: int = 0
    completed_round: Optional[int] = None

    def reached_all(self, network) -> bool:
        """Whether every node received the broadcast message."""
        return set(self.awakened_round) >= set(network.uids)

    def reached_count(self) -> int:
        """Number of informed nodes (source included)."""
        return len(self.awakened_round)


def _run_informed_flood(
    sim: SINRSimulator,
    source: int,
    probability_for_round,
    max_rounds: int,
    rng: np.random.Generator,
    stop_when_complete: bool = True,
) -> RandomizedGlobalBroadcastResult:
    network = sim.network
    uids = list(network.uids)
    informed: Set[int] = {source}
    result = RandomizedGlobalBroadcastResult(awakened_round={source: 0})
    start_round = sim.current_round

    for local_round in range(1, max_rounds + 1):
        transmissions = {}
        for uid in informed:
            if rng.random() < probability_for_round(uid, local_round):
                transmissions[uid] = Message(sender=uid, tag="rand-global")
        delivered = sim.run_round(transmissions, listeners=uids, phase="rand-global")
        newly = {listener for listener in delivered if listener not in informed}
        for uid in newly:
            result.awakened_round[uid] = local_round
        informed |= newly
        if stop_when_complete and len(informed) == len(uids):
            result.completed_round = local_round
            break

    result.rounds_used = sim.current_round - start_round
    return result


def randomized_global_broadcast_decay(
    sim: SINRSimulator,
    source: int,
    delta: Optional[int] = None,
    seed: int = 0,
    rounds_factor: float = 6.0,
    stop_when_complete: bool = True,
) -> RandomizedGlobalBroadcastResult:
    """Decay-style randomized flood: probabilities sweep ``1/2, 1/4, ..., 1/Delta``."""
    network = sim.network
    if delta is None:
        delta = network.delta_bound
    delta = max(2, int(delta))
    rng = np.random.default_rng(seed)
    n = max(network.size, 2)
    levels = max(1, int(math.ceil(math.log2(delta))) + 1)
    sweeps = max(1, int(math.ceil(rounds_factor * (network.size) * math.log(n) / levels)))
    max_rounds = levels * sweeps

    def probability(uid: int, local_round: int) -> float:
        level = (local_round - 1) % levels
        return 1.0 / float(2 ** (level + 1))

    return _run_informed_flood(
        sim, source, probability, max_rounds, rng, stop_when_complete=stop_when_complete
    )


def randomized_global_broadcast_uniform(
    sim: SINRSimulator,
    source: int,
    delta: Optional[int] = None,
    seed: int = 0,
    rounds_factor: float = 6.0,
    stop_when_complete: bool = True,
) -> RandomizedGlobalBroadcastResult:
    """Uniform-probability randomized flood: every informed node sends w.p. ``1/Delta``."""
    network = sim.network
    if delta is None:
        delta = network.delta_bound
    delta = max(2, int(delta))
    rng = np.random.default_rng(seed)
    n = max(network.size, 2)
    max_rounds = max(1, int(math.ceil(rounds_factor * delta * network.size * math.log(n))))

    return _run_informed_flood(
        sim,
        source,
        lambda uid, r: 1.0 / delta,
        max_rounds,
        rng,
        stop_when_complete=stop_when_complete,
    )
