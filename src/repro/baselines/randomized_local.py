"""Randomized local-broadcast baselines (Table 1).

Two classic comparison points from the literature the paper tabulates:

* :func:`randomized_local_broadcast_known_density` -- the Goussevskaia,
  Moscibroda, Wattenhofer style algorithm: when the density ``Delta`` is
  known, every node transmits with probability ``c / Delta`` in every round;
  after ``O(Delta log n)`` rounds every node has, with high probability,
  transmitted in a round where it is locally the only transmitter and is
  therefore heard by its neighbours.
* :func:`randomized_local_broadcast_unknown_density` -- the density-unaware
  variant (Goussevskaia et al. / Yu et al. flavour): nodes sweep a
  geometrically decreasing sequence of transmission probabilities, paying an
  extra logarithmic factor.

These are Monte-Carlo baselines: the reproduction uses them to regenerate
the *shape* of Table 1 (randomized O(Delta log n) versus this paper's
deterministic O(Delta log N log* N)), not to certify their high-probability
guarantees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from ..simulation.engine import SINRSimulator


@dataclass
class RandomizedLocalBroadcastResult:
    """Outcome of a randomized local-broadcast baseline run."""

    delivered: Dict[int, Set[int]] = field(default_factory=dict)
    rounds_used: int = 0
    completed_round: Optional[int] = None

    def receivers_of(self, uid: int) -> Set[int]:
        """Nodes that decoded ``uid``'s message."""
        return self.delivered.get(uid, set())

    def completed(self, network) -> bool:
        """Whether every node reached all of its communication-graph neighbours."""
        return all(
            set(network.neighbors(uid)) <= self.receivers_of(uid) for uid in network.uids
        )

    def completion_ratio(self, network) -> float:
        """Fraction of (node, neighbour) pairs already served."""
        total = 0
        served = 0
        for uid in network.uids:
            for neighbor in network.neighbors(uid):
                total += 1
                if neighbor in self.receivers_of(uid):
                    served += 1
        return served / total if total else 1.0


def _run_probabilistic_rounds(
    sim: SINRSimulator,
    probability_for_round,
    max_rounds: int,
    rng: np.random.Generator,
    stop_when_complete: bool,
    chunk_rounds: int = 32,
) -> RandomizedLocalBroadcastResult:
    """Drive the probabilistic rounds through the batched schedule API.

    The per-round coin flips do not depend on reception outcomes, so the
    whole transmission schedule is precomputed (with the exact RNG stream a
    round-by-round execution would draw) and evaluated in blocks of
    ``chunk_rounds`` via :meth:`SINRSimulator.run_schedule`.  The completion
    check runs between blocks; deliveries after the completion round are
    discarded and ``completed_round`` / ``rounds_used`` keep the exact
    round-by-round semantics (the simulator's global counter may run up to
    ``chunk_rounds - 1`` rounds past completion, the price of batching).
    """
    network = sim.network
    uids = list(network.uids)
    required = {uid: set(network.neighbors(uid)) for uid in uids}
    result = RandomizedLocalBroadcastResult(delivered={uid: set() for uid in uids})
    start_round = sim.current_round

    rounds: List[List[int]] = []
    for local_round in range(1, max_rounds + 1):
        selected = [
            uid for uid in uids if rng.random() < probability_for_round(uid, local_round)
        ]
        rounds.append(selected)

    for chunk_start in range(0, max_rounds, chunk_rounds):
        chunk = rounds[chunk_start : chunk_start + chunk_rounds]
        deliveries = sim.run_schedule(chunk, phase="rand-local")
        for offset, round_deliveries in enumerate(deliveries):
            for listener, sender in round_deliveries:
                result.delivered[sender].add(listener)
            if stop_when_complete and all(
                required[uid] <= result.delivered[uid] for uid in uids
            ):
                result.completed_round = chunk_start + offset + 1
                break
        if result.completed_round is not None:
            break

    if result.completed_round is not None:
        result.rounds_used = result.completed_round
    else:
        result.rounds_used = sim.current_round - start_round
    return result


def randomized_local_broadcast_known_density(
    sim: SINRSimulator,
    delta: Optional[int] = None,
    seed: int = 0,
    rounds_factor: float = 8.0,
    stop_when_complete: bool = True,
) -> RandomizedLocalBroadcastResult:
    """Goussevskaia-style baseline with known density ``Delta``.

    Every node transmits with probability ``1 / Delta`` each round, for at
    most ``rounds_factor * Delta * ln n`` rounds (the O(Delta log n) bound).
    """
    network = sim.network
    if delta is None:
        delta = network.delta_bound
    delta = max(2, int(delta))
    rng = np.random.default_rng(seed)
    n = network.size
    max_rounds = max(1, int(math.ceil(rounds_factor * delta * (math.log(max(n, 2)) + 1))))
    return _run_probabilistic_rounds(
        sim,
        probability_for_round=lambda uid, r: 1.0 / delta,
        max_rounds=max_rounds,
        rng=rng,
        stop_when_complete=stop_when_complete,
    )


def randomized_local_broadcast_unknown_density(
    sim: SINRSimulator,
    seed: int = 0,
    rounds_factor: float = 4.0,
    stop_when_complete: bool = True,
) -> RandomizedLocalBroadcastResult:
    """Density-unaware baseline: sweep probabilities ``1/2, 1/4, ..., 1/n``.

    Each probability level is kept for ``Theta(log n)`` rounds and the sweep
    is repeated, costing the extra logarithmic factors of the unknown-density
    rows of Table 1.
    """
    network = sim.network
    rng = np.random.default_rng(seed)
    n = max(network.size, 2)
    levels = max(1, int(math.ceil(math.log2(n))))
    rounds_per_level = max(1, int(math.ceil(rounds_factor * math.log(n))))
    sweep_length = levels * rounds_per_level
    max_rounds = 4 * sweep_length * levels  # repeated sweeps, O(log^2 n) overhead

    def probability(uid: int, local_round: int) -> float:
        position = (local_round - 1) % sweep_length
        level = position // rounds_per_level
        return 1.0 / float(2 ** (level + 1))

    return _run_probabilistic_rounds(
        sim,
        probability_for_round=probability,
        max_rounds=max_rounds,
        rng=rng,
        stop_when_complete=stop_when_complete,
    )
