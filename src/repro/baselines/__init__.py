"""Baseline algorithms used by the Table 1 / Table 2 experiments."""

from .location_aware import LocationAwareResult, location_aware_local_broadcast
from .randomized_global import (
    RandomizedGlobalBroadcastResult,
    randomized_global_broadcast_decay,
    randomized_global_broadcast_uniform,
)
from .randomized_local import (
    RandomizedLocalBroadcastResult,
    randomized_local_broadcast_known_density,
    randomized_local_broadcast_unknown_density,
)
from .tdma import (
    TDMAGlobalBroadcastResult,
    TDMALocalBroadcastResult,
    tdma_global_broadcast,
    tdma_local_broadcast,
)

__all__ = [
    "LocationAwareResult",
    "RandomizedGlobalBroadcastResult",
    "RandomizedLocalBroadcastResult",
    "TDMAGlobalBroadcastResult",
    "TDMALocalBroadcastResult",
    "location_aware_local_broadcast",
    "randomized_global_broadcast_decay",
    "randomized_global_broadcast_uniform",
    "randomized_local_broadcast_known_density",
    "randomized_local_broadcast_unknown_density",
    "tdma_global_broadcast",
    "tdma_local_broadcast",
]
