"""Location-aware deterministic baseline (the [22]/[26] rows of Tables 1-2).

The prior deterministic algorithms the paper compares against assume every
node knows its own coordinates.  With coordinates, a classic grid strategy
works: tile the plane with cells of diameter at most ``1 - eps``, colour the
cells so that same-coloured cells are far apart (a ``c x c`` periodic
pattern), and iterate over the colours; within a colour class, nodes resolve
contention with a strongly selective family over their IDs.  This gives a
deterministic ``O(Delta log N)``-per-colour local broadcast -- the
``O(Delta polylog n)`` behaviour of Jurdzinski-Kowalski [22] -- and, applied
layer by layer, a ``O(D polylog n)``-flavoured global broadcast
(Jurdzinski-Kowalski-Stachowiak [26]).

This baseline deliberately *breaks* the paper's pure model (it reads node
positions); it exists so the Table 1/2 experiments can show what the extra
model feature buys, which is exactly the comparison the paper makes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..selectors.ssf import greedy_random_ssf
from ..simulation.engine import SINRSimulator
from ..simulation.messages import Message
from ..simulation.schedule import run_schedule


@dataclass
class LocationAwareResult:
    """Outcome of the location-aware deterministic local broadcast."""

    delivered: Dict[int, Set[int]] = field(default_factory=dict)
    rounds_used: int = 0
    colors_used: int = 0

    def completed(self, network) -> bool:
        """Whether every node reached all of its communication-graph neighbours."""
        return all(
            set(network.neighbors(uid)) <= self.delivered.get(uid, set())
            for uid in network.uids
        )

    def completion_ratio(self, network) -> float:
        """Fraction of (node, neighbour) pairs served."""
        total = 0
        served = 0
        for uid in network.uids:
            for neighbor in network.neighbors(uid):
                total += 1
                if neighbor in self.delivered.get(uid, set()):
                    served += 1
        return served / total if total else 1.0


def _grid_color(position: Tuple[float, float], cell: float, period: int) -> Tuple[int, int]:
    gx = int(math.floor(position[0] / cell)) % period
    gy = int(math.floor(position[1] / cell)) % period
    return gx, gy


def location_aware_local_broadcast(
    sim: SINRSimulator,
    delta: Optional[int] = None,
    color_period: int = 4,
    selector_seed: int = 7,
    sweeps: int = 1,
) -> LocationAwareResult:
    """Grid-coloured deterministic local broadcast using node coordinates.

    Parameters
    ----------
    sim:
        The simulator.
    delta:
        Density bound used to size the per-colour selective family.
    color_period:
        Same-coloured grid cells are ``color_period`` cells apart; 4 keeps
        simultaneous transmitters at distance > 2 for the default geometry.
    sweeps:
        Number of times the full colour sweep is repeated.
    """
    network = sim.network
    params = network.params
    if delta is None:
        delta = network.delta_bound
    delta = max(2, int(delta))
    cell = params.communication_radius / math.sqrt(2.0)

    colors: Dict[Tuple[int, int], List[int]] = {}
    for uid in network.uids:
        color = _grid_color(network.position_of(uid), cell, color_period)
        colors.setdefault(color, []).append(uid)

    selector = greedy_random_ssf(
        network.id_space,
        min(delta, network.id_space),
        seed=selector_seed,
        max_rounds=max(1, int(2.0 * delta * (math.log(max(network.id_space, 2)) + 1))),
    )

    result = LocationAwareResult(delivered={uid: set() for uid in network.uids})
    start_round = sim.current_round
    for _ in range(max(1, sweeps)):
        for color in sorted(colors):
            participants = colors[color]
            outcome = run_schedule(
                sim,
                selector,
                participants,
                message_factory=lambda uid: Message(sender=uid, tag="grid-local"),
                phase=f"grid:{color}",
            )
            senders, receivers = outcome.delivery_pairs()
            for sender, listener in zip(senders.tolist(), receivers.tolist()):
                result.delivered[sender].add(listener)
    result.colors_used = len(colors)
    result.rounds_used = sim.current_round - start_round
    return result
