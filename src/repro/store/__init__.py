"""Content-addressed experiment store: cached, resumable, replayable runs.

Every :class:`~repro.api.specs.RunSpec` is deterministic, so its canonical
hash (:func:`spec_key`) is a durable *name* for the result it produces --
the spec hash is a derandomized handle for the whole experiment.  This
package persists executed results under those names:

* :mod:`repro.store.hashing` -- the canonical JSON form and SHA-256 key
  recipe (stable across processes, dict orderings and machines; versioned
  by package release);
* :mod:`repro.store.store` -- :class:`ExperimentStore`, the on-disk store:
  integrity-checked entry manifests, columnar JSON/NPZ payloads, named
  collections for sweeps, and garbage collection that never deletes
  referenced artifacts (nor a live writer's in-flight staging);
* :mod:`repro.store.locking` -- :class:`FileLock`, the cross-process
  advisory lock serializing store mutations, so concurrent processes can
  share one store root safely.

The executor entry points (:func:`repro.api.run`,
:func:`~repro.api.run_many`, :func:`~repro.api.run_grid`,
:func:`~repro.api.run_dynamic`) accept ``store=`` (a path or an
:class:`ExperimentStore`) plus ``cache="reuse"|"refresh"|"off"``, making
interrupted sweeps resumable and warm re-runs near-instant::

    from repro import api

    spec = api.RunSpec(
        deployment=api.DeploymentSpec("uniform", {"nodes": 60, "area": 3.5}, seed=7),
        algorithm=api.AlgorithmSpec("cluster", preset="fast"),
    )
    first = api.run(spec, store="results-store")    # computes, persists
    again = api.run(spec, store="results-store")    # loads: again.cached is True
    assert first.payload() == again.payload()       # bit-identical

From the shell: ``repro-sim run --spec run.json --store results-store`` and
``repro-sim store list|show|gc``.
"""

from .hashing import STORE_FORMAT_VERSION, canonical_json, spec_key, spec_kind
from .locking import FileLock, LockTimeout, pid_alive
from .store import ExperimentStore, StoreError, StoreIntegrityError, resolve_store

__all__ = [
    "STORE_FORMAT_VERSION",
    "ExperimentStore",
    "FileLock",
    "LockTimeout",
    "StoreError",
    "StoreIntegrityError",
    "canonical_json",
    "pid_alive",
    "resolve_store",
    "spec_key",
    "spec_kind",
]
