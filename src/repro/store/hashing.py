"""Canonical spec hashing: the content addresses of the artifact store.

A :class:`~repro.api.specs.RunSpec` fully determines its result (every
algorithm in the registry is deterministic given its spec), so a stable
hash of the spec is a *name* for the result itself -- the derandomized
replay handle: any machine that computes the same key may reuse the stored
artifact instead of re-running the experiment.

Stability is the whole point, so the recipe is deliberately boring:

1. serialize the spec with :func:`canonical_json` -- sorted keys, compact
   separators, ASCII-only, ``NaN`` rejected -- so dict insertion order,
   whitespace and locale can never leak into the key;
2. wrap it in an envelope that pins the artifact ``kind`` (``"run"`` for a
   static spec, ``"epochs"`` for one with a dynamics block), the store
   format version and the package version;
3. take the SHA-256 hex digest.

The package version participates on purpose: a new release may legally
change measured results, and silently reusing artifacts across versions
would defeat the bit-identical guarantee.  Bumping
``repro.__version__`` therefore invalidates every cached artifact.
``tests/test_store.py`` pins a golden key so accidental recipe changes
(rather than deliberate version bumps) fail loudly.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from .. import __version__
from ..api.specs import RunSpec

__all__ = ["STORE_FORMAT_VERSION", "canonical_json", "spec_key", "spec_kind"]

#: On-disk layout / hashing-recipe version.  Participates in every key:
#: changing how artifacts are laid out or hashed orphans old entries
#: instead of misreading them.
STORE_FORMAT_VERSION = 1


def canonical_json(data: Any) -> str:
    """Serialize ``data`` to the canonical JSON form used for hashing.

    Keys are sorted recursively, separators are compact, output is pure
    ASCII and ``NaN``/``Infinity`` are rejected (they are not JSON and
    would make keys non-portable across parsers).  Two mappings that are
    equal as dictionaries always produce identical text, regardless of
    insertion order or the process that built them.
    """
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), ensure_ascii=True, allow_nan=False
    )


def spec_kind(spec: RunSpec) -> str:
    """The artifact kind a spec produces: ``"run"`` or ``"epochs"``.

    A spec with a dynamics block is executed by
    :func:`repro.api.run_dynamic` into an
    :class:`~repro.dynamics.runner.EpochSet`; without one it is executed by
    :func:`repro.api.run` into a :class:`~repro.api.executor.RunResult`.
    The two never share a key even if the rest of the spec coincides.
    """
    return "epochs" if spec.dynamics is not None else "run"


def spec_key(spec: RunSpec) -> str:
    """The content address (64 hex chars) of the artifact ``spec`` produces.

    Stable across processes, machines and dict orderings; distinct across
    seeds, parameters, package versions and static/dynamic execution.

    Example::

        >>> from repro.api import AlgorithmSpec, DeploymentSpec, RunSpec
        >>> spec = RunSpec(DeploymentSpec("uniform", {"nodes": 8}), AlgorithmSpec("cluster"))
        >>> len(spec_key(spec)), spec_key(spec) == spec_key(RunSpec.from_json(spec.to_json()))
        (64, True)
    """
    if not isinstance(spec, RunSpec):
        raise TypeError(f"spec_key expects a RunSpec, got {type(spec).__name__}")
    envelope = {
        "format": STORE_FORMAT_VERSION,
        "package": __version__,
        "kind": spec_kind(spec),
        "spec": spec.to_dict(),
    }
    return hashlib.sha256(canonical_json(envelope).encode("ascii")).hexdigest()
