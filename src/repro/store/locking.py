"""Cross-process advisory locking for on-disk store mutations.

:class:`FileLock` serializes the mutating sections of
:class:`~repro.store.ExperimentStore` (entry commits, collection-manifest
updates, :meth:`~repro.store.ExperimentStore.gc`, entry removal) across
*processes* sharing one store root.  Two strategies, picked automatically:

* ``fcntl.flock`` on a lockfile (POSIX): the kernel drops the lock when
  the holder dies, so a crashed holder can never wedge the store;
* exclusive-create (``O_EXCL``) of a pidfile, for platforms or
  filesystems without usable ``flock``: the holder's PID is written into
  the file, and a waiter *takes over* a lock whose owner is dead -- or
  whose file has gone stale past ``stale_after`` seconds -- instead of
  blocking forever behind a corpse.

Locks are advisory (they only exclude other :class:`FileLock` users on
the same path) and reentrant within a process.  Reentrancy is guarded by
PID, so a forked child never mistakes the parent's held lock for its own.

Typical use::

    lock = FileLock(store_root / ".lock")
    with lock:                       # blocks up to `timeout`, then raises
        ...mutate shared state...    # LockTimeout

Waiting is a poll loop (``poll_interval`` seconds between attempts): the
store's critical sections are directory renames measured in milliseconds,
so contention is short and polling is simpler and more portable than
blocking-lock plumbing across both strategies.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional, Union

try:  # pragma: no cover - import probe
    import fcntl

    _HAVE_FCNTL = True
except ImportError:  # pragma: no cover - non-POSIX platforms
    _HAVE_FCNTL = False

__all__ = ["FileLock", "LockTimeout", "pid_alive"]


class LockTimeout(TimeoutError):
    """Raised when a :class:`FileLock` cannot be acquired within its timeout."""


def pid_alive(pid: int) -> bool:
    """Whether a process with this PID currently exists (signal-0 probe).

    ``True`` is also returned for processes we lack permission to signal
    (they exist, which is all liveness means here); ``False`` for
    nonpositive PIDs.
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class FileLock:
    """A reentrant cross-process advisory lock backed by one lockfile.

    Parameters
    ----------
    path:
        The lockfile.  Everyone who wants mutual exclusion must lock the
        *same path*; the file itself carries no data beyond the holder's
        PID (written for debuggability and, in ``"exclusive"`` mode, for
        stale-lock takeover).
    timeout:
        Default seconds :meth:`acquire` waits before raising
        :class:`LockTimeout` (overridable per call).
    poll_interval:
        Seconds between acquisition attempts while waiting.
    stale_after:
        ``"exclusive"`` mode only: a lockfile older than this whose owner
        cannot be confirmed alive is treated as abandoned and taken over.
        Must comfortably exceed the longest critical section (the store's
        are milliseconds; the default leaves a wide margin).
    strategy:
        ``None`` (auto: ``fcntl`` when available), ``"fcntl"``, or
        ``"exclusive"``.  Tests force ``"exclusive"`` to exercise the
        takeover path on any platform.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        timeout: float = 30.0,
        poll_interval: float = 0.05,
        stale_after: float = 300.0,
        strategy: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        self.timeout = float(timeout)
        self.poll_interval = float(poll_interval)
        self.stale_after = float(stale_after)
        if strategy is None:
            strategy = "fcntl" if _HAVE_FCNTL else "exclusive"
        if strategy not in ("fcntl", "exclusive"):
            raise ValueError(f"unknown lock strategy {strategy!r}")
        if strategy == "fcntl" and not _HAVE_FCNTL:
            raise ValueError("fcntl locking requested but the fcntl module is unavailable")
        self.strategy = strategy
        self._fd: Optional[int] = None
        self._depth = 0
        self._owner_pid: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Public protocol.
    # ------------------------------------------------------------------ #

    @property
    def held(self) -> bool:
        """Whether *this process* currently holds the lock."""
        return self._depth > 0 and self._owner_pid == os.getpid()

    def acquire(self, timeout: Optional[float] = None) -> "FileLock":
        """Take the lock, waiting up to ``timeout`` (default: constructor's).

        Reentrant: a process that already holds the lock nests without
        touching the filesystem.  A forked child inheriting the parent's
        in-memory state acquires afresh (the PID guard sees a foreign
        owner).  Raises :class:`LockTimeout` when the wait expires.
        """
        if self._depth > 0:
            if self._owner_pid == os.getpid():
                self._depth += 1
                return self
            # Forked child: the parent's held state is not ours.
            self._depth = 0
            self._fd = None
            self._owner_pid = None
        budget = self.timeout if timeout is None else float(timeout)
        deadline = time.monotonic() + budget
        while True:
            if self._try_acquire():
                self._depth = 1
                self._owner_pid = os.getpid()
                return self
            if time.monotonic() >= deadline:
                raise LockTimeout(
                    f"could not acquire {self.path} within {budget:g}s "
                    f"(strategy={self.strategy}; another process holds it)"
                )
            time.sleep(self.poll_interval)

    def release(self) -> None:
        """Undo one :meth:`acquire`; the outermost release frees the file."""
        if self._depth == 0 or self._owner_pid != os.getpid():
            raise RuntimeError(f"release of {self.path}, which this process does not hold")
        self._depth -= 1
        if self._depth > 0:
            return
        self._owner_pid = None
        if self.strategy == "fcntl":
            fd, self._fd = self._fd, None
            if fd is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                finally:
                    os.close(fd)
        else:
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self) -> "FileLock":
        """Acquire on ``with`` entry."""
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        """Release on ``with`` exit."""
        self.release()

    def __repr__(self) -> str:
        state = f"held depth={self._depth}" if self.held else "free"
        return f"FileLock({str(self.path)!r}, {self.strategy}, {state})"

    # ------------------------------------------------------------------ #
    # Strategies.
    # ------------------------------------------------------------------ #

    def _try_acquire(self) -> bool:
        if self.strategy == "fcntl":
            return self._try_flock()
        return self._try_exclusive()

    def _try_flock(self) -> bool:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        try:
            os.ftruncate(fd, 0)
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        except OSError:
            pass  # the PID note is advisory; the flock itself is what locks
        self._fd = fd
        return True

    def _try_exclusive(self) -> bool:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            self._steal_if_stale()
            return False
        except OSError:
            return False
        try:
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        finally:
            os.close(fd)
        return True

    def _steal_if_stale(self) -> None:
        """Remove an existing exclusive-mode lockfile if its owner is gone.

        A lockfile is stale when its recorded owner PID is dead, or when
        the PID is unreadable and the file is older than ``stale_after``.
        An unlink race with another waiter (or the owner's release) is
        harmless: whoever creates next wins the following attempt.
        """
        try:
            age = time.time() - self.path.stat().st_mtime
            text = self.path.read_text(encoding="ascii", errors="replace").strip()
        except OSError:
            return  # released (or stolen) between our attempt and now
        try:
            owner = int(text)
        except ValueError:
            owner = -1
        if owner > 0:
            if pid_alive(owner) and age < self.stale_after:
                return
        elif age < self.stale_after:
            return  # mid-write or unreadable but fresh: give the owner time
        try:
            os.unlink(self.path)
        except OSError:
            pass
