"""The content-addressed experiment store: persisted, integrity-checked runs.

:class:`ExperimentStore` is an on-disk dictionary from canonical spec
hashes (:func:`repro.store.spec_key`) to executed results.  One entry is
one directory::

    <root>/objects/<key[:2]>/<key>/
        manifest.json     # kind, spec, file checksums, sizes, timestamps
        payload.json      # the deterministic result payload (JSON)
        columns.npz       # per-epoch columnar arrays (dynamic runs only)

plus ``<root>/manifests/<name>.json`` -- *named collections* (e.g. one per
sweep) that list the member keys of a logical experiment, and ``<root>/tmp``
for staging.  Entries are written atomically (staged under ``tmp`` and
renamed into place), every data file's SHA-256 is recorded in the entry
manifest and re-verified on load, and a checksum mismatch or truncated
file raises :class:`StoreIntegrityError` with a recovery hint instead of
silently reusing a damaged artifact.

The store is what makes sweeps resumable and warm re-runs near-instant:
:func:`repro.api.run`, :func:`~repro.api.run_many`,
:func:`~repro.api.run_grid` and :func:`~repro.api.run_dynamic` all accept
``store=`` / ``cache=`` and skip already-computed cells, returning results
bit-identical to cold execution (property-tested in
``tests/test_store.py``).
"""

from __future__ import annotations

import ctypes
import errno as _errno
import hashlib
import json
import os
import shutil
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Union

import numpy as np

from .. import __version__
from ..api.executor import RunResult
from ..api.specs import RunSpec
from .hashing import STORE_FORMAT_VERSION, spec_key, spec_kind
from .locking import FileLock, pid_alive

__all__ = ["ExperimentStore", "StoreError", "StoreIntegrityError", "resolve_store"]

#: How long (seconds) a staging dir with an *unparsable* or dead PID may
#: linger before :meth:`ExperimentStore.gc` treats it as abandoned debris.
STAGE_GRACE_SECONDS = 3600.0

#: Valid ``cache=`` modes accepted by the executor entry points.
CACHE_MODES = ("reuse", "refresh", "off")


class StoreError(RuntimeError):
    """Base class for artifact-store failures."""


class StoreIntegrityError(StoreError):
    """A stored artifact is damaged (checksum mismatch, truncation, bad JSON).

    Raised instead of silently reusing the entry.  The message names the
    offending file and how to recover (``repro-sim store gc`` deletes the
    damaged entry; ``cache="refresh"`` recomputes and overwrites it).
    """


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _json_dump(data: Any, path: Path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


class ExperimentStore:
    """A content-addressed on-disk store of executed experiment results.

    Parameters
    ----------
    root:
        Directory holding the store (created on first use).  An existing
        non-store directory is refused rather than colonized, unless it is
        empty.

    Entries are keyed by :func:`repro.store.spec_key`; the store never
    inspects result *values* to build keys, so two runs of the same spec
    always land on the same entry.  All methods taking ``spec_or_key``
    accept either a :class:`~repro.api.specs.RunSpec` or a 64-char key.
    """

    MARKER = "store.json"

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        marker = self.root / self.MARKER
        if self.root.exists() and not marker.exists():
            occupied = any(self.root.iterdir()) if self.root.is_dir() else True
            if occupied:
                raise StoreError(
                    f"{self.root} exists but is not an experiment store "
                    f"(missing {self.MARKER}); refusing to write into it"
                )
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "objects").mkdir(exist_ok=True)
        (self.root / "manifests").mkdir(exist_ok=True)
        (self.root / "tmp").mkdir(exist_ok=True)
        if not marker.exists():
            _json_dump({"format": STORE_FORMAT_VERSION, "package": __version__}, marker)
        # Cross-process advisory lock serializing store mutations (entry
        # commits, manifest updates, gc, removal).  Staging itself is
        # lock-free: stage names embed the writer's PID, so writers never
        # collide there and only the publish/collect steps contend.
        self._lock = FileLock(self.root / ".lock")

    # ------------------------------------------------------------------ #
    # Keys and paths.
    # ------------------------------------------------------------------ #

    def key_for(self, spec_or_key: Union[RunSpec, str]) -> str:
        """The full content address for a spec (or an already-computed key)."""
        if isinstance(spec_or_key, RunSpec):
            return spec_key(spec_or_key)
        key = str(spec_or_key)
        if len(key) != 64 or not all(c in "0123456789abcdef" for c in key):
            raise StoreError(f"not a store key (expected 64 hex chars): {key!r}")
        return key

    def _entry_dir(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / key

    def resolve_prefix(self, prefix: str) -> str:
        """Expand an unambiguous key prefix (CLI convenience) to the full key."""
        prefix = str(prefix).lower()
        matches = [key for key in self.keys() if key.startswith(prefix)]
        if not matches:
            raise KeyError(f"no store entry matches key prefix {prefix!r}")
        if len(matches) > 1:
            raise KeyError(
                f"key prefix {prefix!r} is ambiguous: "
                + ", ".join(key[:12] for key in sorted(matches))
            )
        return matches[0]

    def __contains__(self, spec_or_key: object) -> bool:
        if not isinstance(spec_or_key, (RunSpec, str)):
            return False
        return (self._entry_dir(self.key_for(spec_or_key)) / "manifest.json").exists()

    def keys(self) -> List[str]:
        """All entry keys currently in the store, sorted."""
        result = []
        objects = self.root / "objects"
        for shard in sorted(objects.iterdir()) if objects.exists() else []:
            if shard.is_dir():
                result.extend(entry.name for entry in sorted(shard.iterdir()) if entry.is_dir())
        return result

    def __len__(self) -> int:
        return len(self.keys())

    # ------------------------------------------------------------------ #
    # Entry manifests.
    # ------------------------------------------------------------------ #

    def manifest(self, spec_or_key: Union[RunSpec, str]) -> Dict[str, Any]:
        """The integrity manifest of one entry.

        Raises ``KeyError`` on a miss (no entry directory) and
        :class:`StoreIntegrityError` on an *incomplete* entry (directory
        present but no manifest -- debris from an interrupted write or
        removal), which :meth:`gc` knows how to clean up.
        """
        key = self.key_for(spec_or_key)
        path = self._entry_dir(key) / "manifest.json"
        if not path.exists():
            if path.parent.exists():
                raise StoreIntegrityError(
                    f"store entry {key[:12]}... is incomplete (directory present but "
                    f"manifest.json missing -- an interrupted write or removal); "
                    f"delete it with 'repro-sim store gc' or recompute with cache='refresh'"
                )
            raise KeyError(f"no store entry for key {key[:12]}...")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as exc:
            raise StoreIntegrityError(
                f"store entry {key[:12]}... has an unreadable manifest ({exc}); "
                f"delete it with 'repro-sim store gc' or recompute with cache='refresh'"
            ) from exc
        if not isinstance(manifest, dict) or "files" not in manifest or "kind" not in manifest:
            raise StoreIntegrityError(
                f"store entry {key[:12]}... has a malformed manifest (missing kind/files); "
                f"delete it with 'repro-sim store gc' or recompute with cache='refresh'"
            )
        return manifest

    def entries(self) -> List[Dict[str, Any]]:
        """All entry manifests, sorted by creation time (oldest first)."""
        manifests = [self.manifest(key) for key in self.keys()]
        return sorted(manifests, key=lambda m: (m.get("created", 0.0), m.get("key", "")))

    def verify(self, spec_or_key: Union[RunSpec, str]) -> Dict[str, Any]:
        """Re-checksum every file of one entry; returns the manifest.

        Raises :class:`StoreIntegrityError` naming the first damaged file.
        """
        key = self.key_for(spec_or_key)
        manifest = self.manifest(key)
        entry_dir = self._entry_dir(key)
        for name, meta in sorted(manifest["files"].items()):
            path = entry_dir / name
            if not path.exists():
                raise StoreIntegrityError(
                    f"store entry {key[:12]}... is missing file {name!r}; "
                    f"delete it with 'repro-sim store gc' or recompute with cache='refresh'"
                )
            actual = _sha256(path)
            if actual != meta.get("sha256"):
                raise StoreIntegrityError(
                    f"store entry {key[:12]}... file {name!r} is corrupted "
                    f"(checksum mismatch: recorded {str(meta.get('sha256'))[:12]}..., "
                    f"found {actual[:12]}...; {path.stat().st_size} bytes on disk, "
                    f"{meta.get('bytes')} recorded); delete it with 'repro-sim store gc' "
                    f"or recompute with cache='refresh'"
                )
        return manifest

    def verify_all(self) -> Dict[str, Any]:
        """Re-checksum every entry; report damage without deleting anything.

        The non-destructive audit counterpart of :meth:`gc` (which removes
        what it finds broken): every key is pushed through :meth:`verify`
        and failures are *collected*, not raised.  Returns ``{"checked",
        "ok", "corrupt"}`` where ``corrupt`` maps each damaged key to its
        :class:`StoreIntegrityError` message (which names the damaged file
        and the recovery options).
        """
        corrupt: Dict[str, str] = {}
        keys = self.keys()
        for key in keys:
            try:
                self.verify(key)
            except StoreIntegrityError as exc:
                corrupt[key] = str(exc)
        return {"checked": len(keys), "ok": len(keys) - len(corrupt), "corrupt": corrupt}

    # ------------------------------------------------------------------ #
    # Writing entries.
    # ------------------------------------------------------------------ #

    def _install(self, key: str, kind: str, spec: RunSpec, files: Dict[str, bytes],
                 extra: Optional[Dict[str, Any]] = None, overwrite: bool = False) -> str:
        """Atomically write one entry: stage under ``tmp``, rename into place.

        Staging happens lock-free (the stage name embeds this process's
        PID, so concurrent writers never collide); only the publish step --
        checking/clearing the destination and renaming the stage into it --
        runs under the store's cross-process lock, so two processes
        committing the same key cannot half-delete each other's entry and
        :meth:`gc` never observes a torn rename.

        Overwrites (the ``cache="refresh"`` path) swap the staged directory
        in *atomically* where the platform allows (``renameat2`` with
        ``RENAME_EXCHANGE`` on Linux), because concurrent readers take no
        lock: a reader racing a refresh must always resolve a complete
        entry -- old or new -- and never a half-deleted one
        (``tests/test_store_concurrency.py`` pins this).
        """
        entry_dir = self._entry_dir(key)
        if (entry_dir / "manifest.json").exists() and not overwrite:
            return key
        stage = self.root / "tmp" / f"{key}.{os.getpid()}"
        if stage.exists():
            shutil.rmtree(stage)
        stage.mkdir(parents=True)
        try:
            recorded: Dict[str, Dict[str, Any]] = {}
            for name, blob in sorted(files.items()):
                path = stage / name
                with open(path, "wb") as handle:
                    handle.write(blob)
                recorded[name] = {"sha256": _sha256(path), "bytes": len(blob)}
            manifest: Dict[str, Any] = {
                "format": STORE_FORMAT_VERSION,
                "package": __version__,
                "key": key,
                "kind": kind,
                "spec": spec.to_dict(),
                "files": recorded,
                "created": time.time(),
            }
            manifest.update(extra or {})
            _json_dump(manifest, stage / "manifest.json")
            if os.environ.get("REPRO_FAULT_PLAN"):
                # Fault-injection hook (no-op unless a chaos plan targets
                # this spec): damages the staged payload *after* checksums
                # were recorded, so verification must catch it later.
                from ..testing.faults import corrupt_staged_entry

                corrupt_staged_entry(stage, spec)
            entry_dir.parent.mkdir(parents=True, exist_ok=True)
            with self._lock:
                if (entry_dir / "manifest.json").exists():
                    if not overwrite:
                        return key
                    # Refreshing a live entry: readers in *other* processes
                    # do not hold this lock, so the old entry must never be
                    # half-deleted under them.  Swap the staged directory in
                    # atomically (renameat2 RENAME_EXCHANGE); the displaced
                    # old entry lands on the stage path and the finally
                    # block sweeps it.  Readers resolve the old complete
                    # entry or the new complete one, never a torn husk.
                    if _exchange_paths(stage, entry_dir):
                        return key
                    # Exchange unavailable (non-Linux kernel or filesystem):
                    # rename the old entry aside, then rename the stage in.
                    # The entry is briefly a clean miss, never partial; the
                    # aside name embeds our PID so a concurrent gc keeps it
                    # while we are alive.
                    aside = self.root / "tmp" / f"{key}.displaced.{os.getpid()}"
                    if aside.exists():
                        shutil.rmtree(aside)
                    os.replace(entry_dir, aside)
                    try:
                        os.replace(stage, entry_dir)
                    finally:
                        shutil.rmtree(aside, ignore_errors=True)
                    return key
                elif entry_dir.exists():
                    # Incomplete debris (interrupted write or removal): a
                    # fresh result is in hand, so replace the husk instead
                    # of keeping the entry permanently un-persistable.
                    shutil.rmtree(entry_dir)
                try:
                    os.replace(stage, entry_dir)
                except OSError:
                    # A concurrent writer won the rename race; its entry is
                    # equivalent (same key => same payload), keep it.
                    if not (entry_dir / "manifest.json").exists():
                        raise
        finally:
            if stage.exists():
                shutil.rmtree(stage, ignore_errors=True)
        return key

    def put_result(self, result: RunResult, overwrite: bool = False) -> str:
        """Persist one :class:`~repro.api.executor.RunResult`; returns its key.

        An existing entry under the same key is kept untouched unless
        ``overwrite=True`` (the ``cache="refresh"`` path): identical keys
        imply identical payloads, so rewriting is pure churn.
        """
        key = spec_key(result.spec)
        payload = json.dumps(result.to_dict(), indent=2, sort_keys=True).encode("utf-8")
        return self._install(
            key,
            "run",
            result.spec,
            {"payload.json": payload},
            extra={"elapsed": float(result.elapsed), "label": _label(result.spec)},
            overwrite=overwrite,
        )

    def put_epochs(self, epochs: "Any", overwrite: bool = False) -> str:
        """Persist a dynamic-run :class:`~repro.dynamics.runner.EpochSet`.

        The per-epoch measurements are stored *columnar* in ``columns.npz``
        (one array per rounds/checks/metrics/events key, plus epoch indices
        and timings); the JSON payload carries the spec.  Scenarios whose
        epochs disagree on their key sets (possible for plugin algorithms)
        fall back to a plain JSON epoch list.
        """
        key = spec_key(epochs.spec)
        columns = _epoch_columns(epochs)
        payload: Dict[str, Any] = {"spec": epochs.spec.to_dict()}
        files: Dict[str, bytes] = {}
        if columns is None:
            payload["epochs"] = [result.to_dict() for result in epochs.results]
        else:
            import io

            buffer = io.BytesIO()
            np.savez_compressed(buffer, **columns)
            files["columns.npz"] = buffer.getvalue()
        files["payload.json"] = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        return self._install(
            key,
            "epochs",
            epochs.spec,
            files,
            extra={"epochs": len(epochs), "label": _label(epochs.spec)},
            overwrite=overwrite,
        )

    # ------------------------------------------------------------------ #
    # Loading entries.
    # ------------------------------------------------------------------ #

    def _with_refresh_retry(self, key: str, attempt):
        """Run one load attempt, absorbing races with a concurrent refresh.

        A refresh replaces the whole entry directory in one atomic rename,
        but a *reader* makes several file reads (manifest, checksums,
        payload) that can straddle that swap and mix old-manifest with
        new-files -- a spurious :class:`StoreIntegrityError`.  Detect that
        case by fingerprinting the manifest file's identity (inode, mtime,
        size) before each attempt: if it changed by the time the attempt
        failed, a refresh raced us and the retry sees a consistent entry.
        Genuine corruption leaves the identity stable and re-raises at
        once, so damaged entries still fail loudly.
        """
        for _ in range(4):
            token = _entry_token(self._entry_dir(key))
            try:
                return attempt()
            except StoreIntegrityError:
                if _entry_token(self._entry_dir(key)) == token:
                    raise
        return attempt()

    def load_result(self, spec_or_key: Union[RunSpec, str]) -> Optional[RunResult]:
        """Load a static run by spec or key; ``None`` on a miss.

        The entry's checksums are verified first: a damaged entry raises
        :class:`StoreIntegrityError` instead of returning (or recomputing)
        anything.  Loaded results carry ``cached=True``.  Reads are safe
        against concurrent ``cache="refresh"`` writers: the entry resolves
        to a complete artifact (old or new), never a torn one.
        """
        key = self.key_for(spec_or_key)
        if key not in self:
            return None
        return self._with_refresh_retry(key, lambda: self._load_result_once(key))

    def _load_result_once(self, key: str) -> RunResult:
        manifest = self.verify(key)
        if manifest["kind"] != "run":
            raise StoreError(
                f"store entry {key[:12]}... holds a {manifest['kind']!r} artifact, "
                f"not a static run (dynamic specs load via load_epochs)"
            )
        data = self._read_payload(key)
        result = RunResult.from_dict(data)
        return _mark_cached(result)

    def load_epochs(self, spec_or_key: Union[RunSpec, str]):
        """Load a dynamic-run :class:`EpochSet` by spec or key; ``None`` on a miss.

        Same refresh-safety as :meth:`load_result`: racing a concurrent
        overwrite yields a complete old or new artifact, never a torn one.
        """
        key = self.key_for(spec_or_key)
        if key not in self:
            return None
        return self._with_refresh_retry(key, lambda: self._load_epochs_once(key))

    def _load_epochs_once(self, key: str):
        from ..dynamics.runner import EpochResult, EpochSet

        manifest = self.verify(key)
        if manifest["kind"] != "epochs":
            raise StoreError(
                f"store entry {key[:12]}... holds a {manifest['kind']!r} artifact, "
                f"not a dynamic run (static specs load via load_result)"
            )
        payload = self._read_payload(key)
        spec = RunSpec.from_dict(payload["spec"])
        npz_path = self._entry_dir(key) / "columns.npz"
        if npz_path.exists():
            results = _epochs_from_columns(npz_path, key, EpochResult)
        else:
            results = [
                EpochResult(
                    epoch=int(entry["epoch"]),
                    rounds={k: int(v) for k, v in entry["rounds"].items()},
                    checks={k: bool(v) for k, v in entry["checks"].items()},
                    metrics={k: float(v) for k, v in entry["metrics"].items()},
                    events={k: int(v) for k, v in entry["events"].items()},
                    elapsed=float(entry.get("elapsed", 0.0)),
                )
                for entry in payload["epochs"]
            ]
        return EpochSet(spec=spec, results=results)

    def get(self, spec_or_key: Union[RunSpec, str]):
        """Load whatever an entry holds (``RunResult`` or ``EpochSet``).

        Raises ``KeyError`` on a miss (use :meth:`load_result` /
        :meth:`load_epochs` for ``None``-on-miss semantics).
        """
        key = self.key_for(spec_or_key)
        manifest = self.manifest(key)  # raises KeyError on a miss
        if manifest["kind"] == "epochs":
            return self.load_epochs(key)
        return self.load_result(key)

    def _read_payload(self, key: str) -> Dict[str, Any]:
        path = self._entry_dir(key) / "payload.json"
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError) as exc:
            raise StoreIntegrityError(
                f"store entry {key[:12]}... has an unreadable payload.json ({exc}); "
                f"delete it with 'repro-sim store gc' or recompute with cache='refresh'"
            ) from exc

    def remove(self, spec_or_key: Union[RunSpec, str]) -> None:
        """Delete one entry (no error if absent).

        Runs under the store lock so a removal never interleaves with a
        concurrent commit of the same key (which could otherwise tear the
        freshly-renamed entry in half).
        """
        entry_dir = self._entry_dir(self.key_for(spec_or_key))
        with self._lock:
            if entry_dir.exists():
                shutil.rmtree(entry_dir)

    # ------------------------------------------------------------------ #
    # Named collections (sweep manifests).
    # ------------------------------------------------------------------ #

    def write_manifest(self, name: str, keys: Sequence[str],
                       meta: Optional[Dict[str, Any]] = None) -> Path:
        """Write a named collection listing the member keys of an experiment.

        Collections are how multi-cell experiments (sweeps, grids) stay
        discoverable and how :meth:`gc` knows which entries are *live*:
        pruning never deletes an entry referenced by any collection.
        Rewriting an existing name replaces it.
        """
        safe = str(name)
        if not safe or any(sep in safe for sep in ("/", "\\", "..")):
            raise StoreError(f"invalid manifest name {safe!r}")
        data = {
            "name": safe,
            "keys": sorted({self.key_for(key) for key in keys}),
            "created": time.time(),
            "package": __version__,
        }
        data.update(meta or {})
        path = self.root / "manifests" / f"{safe}.json"
        stage = self.root / "tmp" / f"manifest-{safe}.{os.getpid()}.json"
        _json_dump(data, stage)
        with self._lock:
            os.replace(stage, path)
        return path

    def read_manifest(self, name: str) -> Dict[str, Any]:
        """Load one named collection (raises ``KeyError`` if absent)."""
        path = self.root / "manifests" / f"{name}.json"
        if not path.exists():
            raise KeyError(
                f"no manifest named {name!r}; available: "
                + (", ".join(self.manifest_names()) or "(none)")
            )
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def manifest_names(self) -> List[str]:
        """Sorted names of all collections in the store."""
        directory = self.root / "manifests"
        return sorted(path.stem for path in directory.glob("*.json"))

    def referenced_keys(self) -> Set[str]:
        """The union of keys referenced by any named collection."""
        referenced: Set[str] = set()
        for name in self.manifest_names():
            referenced.update(self.read_manifest(name).get("keys", []))
        return referenced

    # ------------------------------------------------------------------ #
    # Maintenance.
    # ------------------------------------------------------------------ #

    def gc(self, prune_unreferenced: bool = False) -> Dict[str, Any]:
        """Collect garbage; returns a report of what was (not) removed.

        Removes *abandoned* staging debris and entries that fail
        verification (corrupt or incomplete) -- *except* corrupt entries
        referenced by a live collection, which are reported under
        ``"corrupt_kept"`` but never deleted (a referenced artifact is
        someone's data; deleting it is a human decision).
        ``prune_unreferenced=True`` additionally removes healthy entries no
        collection references.

        The whole pass runs under the store's cross-process lock, and
        staging items are only collected when their embedded writer PID is
        dead (or unparsable and older than :data:`STAGE_GRACE_SECONDS`):
        a live writer's mid-stage entry is reported under
        ``"staging_kept_live"`` and left alone, so gc racing a concurrent
        commit can never half-delete work in flight.
        """
        with self._lock:
            referenced = self.referenced_keys()
            removed: List[str] = []
            corrupt_kept: List[str] = []
            pruned: List[str] = []
            swept = 0
            kept_live = 0
            tmp = self.root / "tmp"
            for item in list(tmp.iterdir()) if tmp.exists() else []:
                if _stage_in_use(item):
                    kept_live += 1
                    continue
                swept += 1
                if item.is_dir():
                    shutil.rmtree(item, ignore_errors=True)
                else:
                    item.unlink()
            for key in self.keys():
                try:
                    self.verify(key)
                except StoreError:
                    if key in referenced:
                        corrupt_kept.append(key)
                    else:
                        self.remove(key)
                        removed.append(key)
                    continue
                if prune_unreferenced and key not in referenced:
                    self.remove(key)
                    pruned.append(key)
            return {
                "removed_corrupt": removed,
                "corrupt_kept": corrupt_kept,
                "pruned_unreferenced": pruned,
                "staging_debris": swept,
                "staging_kept_live": kept_live,
                "remaining": len(self),
            }

    def stats(self) -> Dict[str, Any]:
        """Aggregate store statistics (entry counts, bytes, kinds)."""
        total_bytes = 0
        kinds: Dict[str, int] = {}
        keys = self.keys()
        for key in keys:
            entry_dir = self._entry_dir(key)
            for path in entry_dir.iterdir():
                total_bytes += path.stat().st_size
            try:
                kind = self.manifest(key)["kind"]
            except StoreError:
                kind = "(corrupt)"
            kinds[kind] = kinds.get(kind, 0) + 1
        return {
            "root": str(self.root),
            "entries": len(keys),
            "kinds": kinds,
            "manifests": self.manifest_names(),
            "bytes": total_bytes,
        }

    def __repr__(self) -> str:
        return f"ExperimentStore({str(self.root)!r}, {len(self)} entries)"


# ---------------------------------------------------------------------- #
# Helpers.
# ---------------------------------------------------------------------- #


def resolve_store(store: Union["ExperimentStore", str, os.PathLike, None]) -> Optional[ExperimentStore]:
    """Coerce a ``store=`` argument (path or instance or ``None``) to a store."""
    if store is None or isinstance(store, ExperimentStore):
        return store
    return ExperimentStore(store)


#: ``renameat2`` flag: atomically exchange the two paths (Linux >= 3.15).
_RENAME_EXCHANGE = 2
_AT_FDCWD = -100
_LIBC: Optional[Any] = None


def _exchange_paths(new: Path, old: Path) -> bool:
    """Atomically swap two directories; ``False`` if the platform cannot.

    Uses ``renameat2(..., RENAME_EXCHANGE)`` via libc on Linux: after the
    call, ``old`` holds the staged content and ``new`` holds the displaced
    entry, with no instant at which either path is absent or partial.
    Returns ``False`` (caller falls back to rename-aside) when libc or the
    filesystem lacks the syscall.
    """
    global _LIBC
    if _LIBC is None:
        try:
            _LIBC = ctypes.CDLL(None, use_errno=True)
        except (OSError, TypeError):
            _LIBC = False
    if not _LIBC or not hasattr(_LIBC, "renameat2"):
        return False
    rc = _LIBC.renameat2(
        _AT_FDCWD, os.fsencode(new), _AT_FDCWD, os.fsencode(old), _RENAME_EXCHANGE
    )
    if rc == 0:
        return True
    code = ctypes.get_errno()
    if code in (_errno.EINVAL, _errno.ENOSYS, _errno.ENOTSUP):
        return False  # kernel or filesystem does not support the exchange
    raise OSError(code, os.strerror(code), str(new), None, str(old))


def _entry_token(entry_dir: Path) -> Optional[tuple]:
    """Identity fingerprint of an entry's manifest file (``None`` if absent).

    A refresh swaps in a different inode, so comparing tokens before and
    after a failed read distinguishes "a concurrent refresh raced us"
    (token changed -- retry) from genuine corruption (token stable --
    raise).
    """
    try:
        stat = os.stat(entry_dir / "manifest.json")
    except OSError:
        return None
    return (stat.st_ino, stat.st_mtime_ns, stat.st_size)


def _stage_pid(name: str) -> Optional[int]:
    """The writer PID embedded in a staging name, or ``None``.

    Stage names are ``<key>.<pid>`` (entry dirs) and
    ``manifest-<name>.<pid>.json`` (collection files); the PID is always
    the last dot-separated component once a ``.json`` suffix is stripped.
    """
    if name.endswith(".json"):
        name = name[: -len(".json")]
    _, _, tail = name.rpartition(".")
    try:
        pid = int(tail)
    except ValueError:
        return None
    return pid if pid > 0 else None


def _stage_in_use(item: Path) -> bool:
    """Whether a staging item may belong to a *live* writer (gc must keep it).

    True when the embedded PID is alive *and* the item's mtime is younger
    than :data:`STAGE_GRACE_SECONDS` (the mtime guard defuses PID reuse:
    a recycled PID cannot pin hours-old debris forever).  Items without a
    parsable PID were not written by this store's staging scheme and are
    always sweepable.
    """
    pid = _stage_pid(item.name)
    if pid is None:
        return False
    try:
        age = time.time() - item.stat().st_mtime
    except OSError:
        return False  # vanished mid-scan: nothing left to keep or sweep
    return pid_alive(pid) and age < STAGE_GRACE_SECONDS


def _label(spec: RunSpec) -> str:
    """One-line human description used by ``repro-sim store list``."""
    suffix = ""
    if spec.dynamics is not None:
        suffix = f" x {spec.dynamics.epochs} epochs ({spec.dynamics.mobility.kind})"
    return (
        f"{spec.algorithm.name} on {spec.deployment.kind} "
        f"seed {spec.deployment.seed}{suffix}"
    )


def _mark_cached(result: RunResult) -> RunResult:
    import dataclasses

    return dataclasses.replace(result, cached=True)


def _epoch_columns(epochs) -> Optional[Dict[str, np.ndarray]]:
    """Columnar arrays for an EpochSet, or ``None`` when key sets are ragged."""
    results = list(epochs.results)
    if not results:
        return None
    columns: Dict[str, np.ndarray] = {
        "epoch": np.array([r.epoch for r in results], dtype=np.int64),
        "elapsed": np.array([r.elapsed for r in results], dtype=np.float64),
    }
    for column, dtype in (("rounds", np.int64), ("checks", np.bool_),
                          ("metrics", np.float64), ("events", np.int64)):
        keys = set(getattr(results[0], column))
        if any(set(getattr(r, column)) != keys for r in results):
            return None
        for key in sorted(keys):
            columns[f"{column}:{key}"] = np.array(
                [getattr(r, column)[key] for r in results], dtype=dtype
            )
    return columns


def _epochs_from_columns(path: Path, key: str, epoch_result_cls) -> List[Any]:
    """Rebuild per-epoch results from a ``columns.npz`` file."""
    try:
        with np.load(path) as npz:
            columns = {name: npz[name] for name in npz.files}
    except (OSError, ValueError, KeyError) as exc:
        raise StoreIntegrityError(
            f"store entry {key[:12]}... has an unreadable columns.npz ({exc}); "
            f"delete it with 'repro-sim store gc' or recompute with cache='refresh'"
        ) from exc
    count = len(columns["epoch"])
    per_column: Dict[str, Dict[str, np.ndarray]] = {"rounds": {}, "checks": {}, "metrics": {}, "events": {}}
    for name, values in columns.items():
        if ":" in name:
            column, entry_key = name.split(":", 1)
            per_column[column][entry_key] = values
    results = []
    for i in range(count):
        results.append(
            epoch_result_cls(
                epoch=int(columns["epoch"][i]),
                rounds={k: int(v[i]) for k, v in sorted(per_column["rounds"].items())},
                checks={k: bool(v[i]) for k, v in sorted(per_column["checks"].items())},
                metrics={k: float(v[i]) for k, v in sorted(per_column["metrics"].items())},
                events={k: int(v[i]) for k, v in sorted(per_column["events"].items())},
                elapsed=float(columns["elapsed"][i]),
            )
        )
    return results
