"""A thread-hosted simulation service for blocking test and benchmark code.

:class:`ServiceHarness` runs a :class:`~repro.service.SimulationService` on
a dedicated background thread with its own event loop, so synchronous code
(pytest tests, the ``bench_service_api.py`` load generator, notebooks) can
drive it with plain blocking :class:`~repro.service.ServiceClient` calls::

    with ServiceHarness(ServiceConfig(store=tmp_path / "store")) as harness:
        client = harness.client()
        client.run(spec_dict)

The service binds an ephemeral port by default (``port=0``); ``.port`` is
valid once ``start()``/``__enter__`` returns.  ``stop()`` shuts the service
and the loop down and joins the thread -- safe to call twice.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Optional

__all__ = ["ServiceHarness"]


class ServiceHarness:
    """Own a service + event loop on a background thread; blockingly usable.

    ``config`` defaults to an ephemeral-port, store-less service; pass a
    :class:`~repro.service.ServiceConfig` to attach a store or shrink the
    worker pool (the backpressure tests run with ``max_workers=1,
    queue_limit=1``).
    """

    def __init__(self, config: Optional[Any] = None) -> None:
        from ..service import ServiceConfig, SimulationService

        if config is None:
            config = ServiceConfig(port=0)
        self.service = SimulationService(config)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.service.start())
        except BaseException as exc:  # noqa: BLE001 - reported to start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.service.stop())
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def start(self) -> "ServiceHarness":
        """Start the thread and block until the service is listening."""
        self._thread = threading.Thread(target=self._main, name="service-harness", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("service did not come up within 30s")
        return self

    def stop(self) -> None:
        """Stop the service, tear the loop down, join the thread (idempotent)."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "ServiceHarness":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        return self.service.port

    def client(self, timeout: float = 60.0):
        """A fresh blocking :class:`~repro.service.ServiceClient` for this service."""
        from ..service import ServiceClient

        return ServiceClient(self.service.config.host, self.port, timeout=timeout)
