"""Seeded fault injection: make chosen grid cells raise, hang, die or corrupt.

The executor's robustness guarantees (per-cell retry, timeout, quarantine,
worker recycling, store locking) are only trustworthy if they can be
exercised deterministically.  This module provides that: a
:class:`FaultPlan` maps *placement seeds* to :class:`FaultSpec` actions,
and the executor's worker entry point calls :func:`fire_if_planned` right
before executing a cell.  Because cells of a grid are identified by their
spec (and multi-seed ensembles re-seed the deployment), keying faults by
seed picks out exact cells of a :func:`repro.api.run_many` /
:func:`repro.api.run_grid` fan-out, bit-reproducibly::

    from repro.testing import faults

    plan = faults.FaultPlan({
        3: faults.FaultSpec("exit"),                 # hard worker death
        7: faults.FaultSpec("hang", times=-1),       # hangs every attempt
        11: faults.FaultSpec("raise", times=1),      # fails once, then heals
    })
    with faults.injected_faults(plan):
        ensemble = api.run_many(spec, seeds=range(24),
                                timeout=2.0, retries=2, on_error="retry")

Fault kinds:

* ``"raise"`` -- the worker raises :class:`InjectedFault` (an ordinary
  exception: the worker survives and is reused);
* ``"hang"`` -- the worker sleeps for ``hang_seconds`` (the supervisor's
  per-cell ``timeout=`` must cancel it and recycle the worker);
* ``"exit"`` -- the worker hard-exits via ``os._exit`` (no cleanup, no
  exception: simulates an OOM kill or segfault);
* ``"corrupt"`` -- the cell *executes normally* but the store's staging
  hook (:func:`corrupt_staged_entry`) flips bytes in the staged
  ``payload.json`` before the entry is committed, so the persisted
  artifact fails checksum verification on the next load.

``times`` bounds how many *attempts* of a matching cell fire the fault
(attempt numbers are supplied by the executor's retry loop, so a fault
with ``times=1`` heals on the first retry); ``times=-1`` fires forever.

Plans propagate to worker processes automatically: :func:`install` sets a
module global (inherited by forked workers) *and* the ``REPRO_FAULT_PLAN``
environment variable (inherited by spawned workers), and
:func:`active_plan` reads whichever is present.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "clear",
    "corrupt_staged_entry",
    "fire_if_planned",
    "injected_faults",
    "install",
    "kill_worker_when_leased",
]

#: The recognized fault kinds (see the module docstring for semantics).
FAULT_KINDS = ("raise", "hang", "exit", "corrupt")

#: Environment variable carrying the active plan as JSON (for spawned workers).
ENV_VAR = "REPRO_FAULT_PLAN"


class InjectedFault(RuntimeError):
    """The exception raised by a ``"raise"`` fault (and nothing else).

    Tests can assert on this type to distinguish injected failures from
    genuine bugs in the code under test.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault action: what happens, on how many attempts, how hard.

    ``times`` is the number of *attempts* of a matching cell that fire the
    fault (``-1`` = every attempt, forever); ``hang_seconds`` is the sleep
    duration of a ``"hang"`` (made long enough that only the supervisor's
    timeout ends it); ``exit_code`` is the hard-exit status of an
    ``"exit"``.
    """

    kind: str
    times: int = 1
    hang_seconds: float = 300.0
    exit_code: int = 17

    def __post_init__(self) -> None:
        """Validate the fault kind against :data:`FAULT_KINDS`."""
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {', '.join(FAULT_KINDS)}"
            )

    def fires(self, attempt: int) -> bool:
        """Whether this fault fires on the given 1-based attempt number."""
        return self.times < 0 or attempt <= self.times

    def to_dict(self) -> Dict[str, Any]:
        """JSON-representable form (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "times": self.times,
            "hang_seconds": self.hang_seconds,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        """Rebuild a fault from :meth:`to_dict` output."""
        return cls(
            kind=str(data["kind"]),
            times=int(data.get("times", 1)),
            hang_seconds=float(data.get("hang_seconds", 300.0)),
            exit_code=int(data.get("exit_code", 17)),
        )


class FaultPlan:
    """An immutable mapping from placement seeds to the faults they suffer.

    The plan is the unit of installation: :func:`install` makes it visible
    to every executor worker (forked or spawned) and to the store's staging
    hook; :func:`clear` removes it.  Plans round-trip through JSON so they
    survive process boundaries byte-identically.
    """

    def __init__(self, faults: Mapping[int, FaultSpec]) -> None:
        self._faults: Dict[int, FaultSpec] = {}
        for seed, fault in faults.items():
            if not isinstance(fault, FaultSpec):
                raise TypeError(f"fault for seed {seed!r} is not a FaultSpec: {fault!r}")
            self._faults[int(seed)] = fault

    def fault_for(self, seed: int) -> Optional[FaultSpec]:
        """The fault planned for a placement seed, or ``None``."""
        return self._faults.get(int(seed))

    def seeds(self) -> list:
        """The targeted placement seeds, sorted."""
        return sorted(self._faults)

    def __len__(self) -> int:
        return len(self._faults)

    def __repr__(self) -> str:
        parts = ", ".join(f"{seed}:{fault.kind}" for seed, fault in sorted(self._faults.items()))
        return f"FaultPlan({{{parts}}})"

    def to_json(self) -> str:
        """Serialize the plan (sorted keys, so byte-stable)."""
        return json.dumps(
            {str(seed): fault.to_dict() for seed, fault in self._faults.items()},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output."""
        data = json.loads(text)
        return cls({int(seed): FaultSpec.from_dict(fault) for seed, fault in data.items()})


#: The plan installed in this process (forked workers inherit it).
_ACTIVE: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    """Activate a fault plan for this process and all its future workers."""
    global _ACTIVE
    if not isinstance(plan, FaultPlan):
        raise TypeError(f"expected a FaultPlan, got {plan!r}")
    _ACTIVE = plan
    os.environ[ENV_VAR] = plan.to_json()


def clear() -> None:
    """Deactivate any installed fault plan (safe to call when none is)."""
    global _ACTIVE
    _ACTIVE = None
    os.environ.pop(ENV_VAR, None)


def active_plan() -> Optional[FaultPlan]:
    """The currently-installed plan (module global, else the environment)."""
    if _ACTIVE is not None:
        return _ACTIVE
    encoded = os.environ.get(ENV_VAR)
    if not encoded:
        return None
    try:
        return FaultPlan.from_json(encoded)
    except (ValueError, KeyError, TypeError):
        # A malformed plan must never turn into phantom behavior changes;
        # ignoring it keeps production runs safe if the variable leaks.
        return None


@contextmanager
def injected_faults(plan: FaultPlan):
    """Context manager: install ``plan`` for the block, then restore before.

    The previous plan (usually none) is reinstated on exit even when the
    block raises, so tests cannot leak chaos into each other.
    """
    global _ACTIVE
    previous = _ACTIVE
    previous_env = os.environ.get(ENV_VAR)
    install(plan)
    try:
        yield plan
    finally:
        if previous is not None:
            install(previous)
        elif previous_env is not None:
            _ACTIVE = None
            os.environ[ENV_VAR] = previous_env
        else:
            clear()


def fire_if_planned(spec: Any, attempt: int = 1) -> None:
    """Fire the planned fault for a spec's placement seed, if any.

    Called by the executor's cell runners (worker entry point and the
    serial path) with the 1-based attempt number.  ``corrupt`` faults are
    *not* fired here -- they act at store-staging time through
    :func:`corrupt_staged_entry`.  A no-op (one dict lookup) when no plan
    is installed.
    """
    plan = active_plan()
    if plan is None:
        return
    fault = plan.fault_for(int(spec.seed))
    if fault is None or fault.kind == "corrupt" or not fault.fires(int(attempt)):
        return
    if fault.kind == "raise":
        raise InjectedFault(
            f"injected fault: seed {spec.seed} raises on attempt {attempt}"
        )
    if fault.kind == "hang":
        time.sleep(fault.hang_seconds)
        return
    if fault.kind == "exit":
        os._exit(fault.exit_code)


def kill_worker_when_leased(
    queue: Any,
    process: Any,
    seed: Optional[int] = None,
    timeout: float = 30.0,
    poll_interval: float = 0.02,
) -> str:
    """SIGKILL a live distributed worker the moment it holds a lease.

    The chaos primitive for :mod:`repro.distributed`: polls the queue's
    lease snapshot until ``process`` (a started ``multiprocessing.Process``
    or anything with ``.pid``) owns a lease -- optionally the lease of the
    cell with placement seed ``seed`` -- then delivers ``SIGKILL`` (no
    cleanup, no atexit: the lease is left behind exactly as a crashed host
    would leave it) and returns the orphaned lease's spec key.  Raises
    ``TimeoutError`` if the worker never claims a matching cell within
    ``timeout`` seconds, so a mis-targeted chaos test fails loudly instead
    of hanging.
    """
    import signal

    pid = int(process.pid)
    wanted_keys = None
    if seed is not None:
        wanted_keys = {
            key
            for index, key in enumerate(queue.keys)
            if queue.spec_at(index).seed == int(seed)
        }
        if not wanted_keys:
            raise ValueError(f"no cell of queue {queue.name!r} has placement seed {seed}")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for key, lease in queue.leases().items():
            if int(lease.get("pid", -1)) != pid:
                continue
            if wanted_keys is not None and key not in wanted_keys:
                continue
            os.kill(pid, signal.SIGKILL)
            process.join(timeout=10.0)
            return key
        time.sleep(poll_interval)
    raise TimeoutError(
        f"worker pid {pid} never held a matching lease of queue {queue.name!r} "
        f"within {timeout}s"
    )


def corrupt_staged_entry(stage_dir: Path, spec: Any) -> bool:
    """Flip bytes in a staged ``payload.json`` when the plan says to.

    Called by :meth:`repro.store.ExperimentStore` *after* checksums are
    recorded and *before* the staged entry is renamed into place, so the
    committed entry carries a checksum mismatch that
    :meth:`~repro.store.ExperimentStore.verify` (and therefore every load)
    must catch.  Returns whether a corruption was applied.
    """
    plan = active_plan()
    if plan is None:
        return False
    try:
        seed = int(spec.seed)
    except (AttributeError, TypeError, ValueError):
        return False
    fault = plan.fault_for(seed)
    if fault is None or fault.kind != "corrupt":
        return False
    payload = Path(stage_dir) / "payload.json"
    if not payload.exists():
        return False
    data = bytearray(payload.read_bytes())
    if not data:
        return False
    data[len(data) // 2] ^= 0xFF
    payload.write_bytes(bytes(data))
    return True
