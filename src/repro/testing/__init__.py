"""Deterministic test harnesses for the executor and the store.

This package holds tooling that *injects* controlled failures into the
system under test -- it is imported by the production code only through
cheap, lazily-guarded hooks, and does nothing at all unless a fault plan
has been installed:

* :mod:`repro.testing.faults` -- the seeded chaos harness: a
  :class:`~repro.testing.faults.FaultPlan` maps placement seeds to faults
  (``raise`` / ``hang`` / ``exit`` / ``corrupt``) that fire inside executor
  workers (or the store's staging path, for ``corrupt``) on exactly the
  chosen cells, so grid-robustness tests are bit-reproducible.

* :mod:`repro.testing.service` -- :class:`ServiceHarness`, a thread-hosted
  :class:`~repro.service.SimulationService` that blocking test and
  benchmark code can drive with plain HTTP clients.

See ``docs/guide/reliability.md`` for usage and ``tests/test_faults.py``
for the stress suite that drives grids through every failure mode.
"""

from .faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    clear,
    fire_if_planned,
    injected_faults,
    install,
)
from .service import ServiceHarness

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ServiceHarness",
    "active_plan",
    "clear",
    "fire_if_planned",
    "injected_faults",
    "install",
]
