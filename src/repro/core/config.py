"""Algorithm configuration: the paper's constants, made explicit and tunable.

The algorithms of Sections 3-5 are governed by a handful of constants that
the paper treats as "O(1) depending only on the SINR parameters":

* ``kappa`` -- the close-neighbourhood size of Lemmas 5-6 (how many nearest
  nodes must stay silent for a close pair to communicate);
* ``rho`` -- the number of conflicting clusters of Lemma 6;
* ``sns_parameter`` -- the ssf parameter ``k_gamma`` of the Sparse Network
  Schedule (Lemma 4);
* the loop bounds expressed through packing numbers ``chi(...)`` (Algorithms
  3, 5 and 6).

Their worst-case values are astronomically conservative (packing constants in
the hundreds), which is irrelevant for an asymptotic analysis but would make
a faithful simulation intractable.  :class:`AlgorithmConfig` exposes every
constant with laptop-scale defaults and provides :meth:`AlgorithmConfig.
faithful` for the paper-accurate values; DESIGN.md §5 records this
substitution.  All loops additionally support *adaptive termination* (stop
when a further iteration provably cannot change the outcome), which preserves
the output exactly while skipping the padding iterations the worst-case
bounds require.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from ..sinr.geometry import chi
from ..sinr.model import SINRParameters


@dataclass(frozen=True)
class AlgorithmConfig:
    """Tunable constants for the clustering / broadcast algorithms.

    Attributes
    ----------
    kappa:
        Close-neighbourhood size (Lemma 5/6); the proximity-graph degree cap.
    rho:
        Number of conflicting clusters a wcss round must avoid (Lemma 6).
    candidate_cap:
        Purge threshold of Algorithm 1's filtering phase.  The paper uses
        ``kappa``; a slightly larger cap keeps the degree bound O(1) while
        being forgiving about compact selectors.
    sns_parameter:
        The ssf parameter ``k_gamma`` of the Sparse Network Schedule.
    selector_seed:
        Seed of the seeded probabilistic selector constructions.
    selector_size_factor:
        Multiplier on the compact selector lengths (1.0 = default length).
    faithful_selectors:
        Use the paper's full ``O(k^3 log N)`` / ``O((k+l) l k^2 log N)``
        selector lengths.
    max_sparsification_iterations:
        Upper bound on the iterations of Algorithm 2's main loop (the paper
        uses ``Gamma``); ``None`` means "use Gamma".
    unclustered_repetitions:
        Upper bound on the repetitions in Algorithm 3 (the paper uses
        ``chi(5, 1-eps)``); adaptive termination stops earlier.
    radius_reduction_repetitions:
        Upper bound on Algorithm 5's outer loop (paper: ``chi(r+1, 1-eps)``).
    adaptive_termination:
        Stop loops as soon as an iteration makes no progress (output-
        preserving; see module docstring).
    mis_max_iterations:
        Bound on iterated-local-minima MIS rounds (``None`` = size of graph).
    radius_reduction_interval:
        Run Algorithm 5 after every this-many levels of the clustering
        algorithm's reverse pass (the paper uses 1; larger values trade
        cluster radius for rounds).
    """

    kappa: int = 4
    rho: int = 3
    candidate_cap: Optional[int] = None
    sns_parameter: int = 6
    selector_seed: int = 2018
    selector_size_factor: float = 1.0
    faithful_selectors: bool = False
    max_sparsification_iterations: Optional[int] = 8
    unclustered_repetitions: Optional[int] = 3
    radius_reduction_repetitions: Optional[int] = 6
    adaptive_termination: bool = True
    mis_max_iterations: Optional[int] = None
    radius_reduction_interval: int = 1

    def __post_init__(self) -> None:
        if self.kappa < 2:
            raise ValueError("kappa must be at least 2")
        if self.rho < 1:
            raise ValueError("rho must be at least 1")
        if self.sns_parameter < 2:
            raise ValueError("sns_parameter must be at least 2")
        if self.selector_size_factor <= 0:
            raise ValueError("selector_size_factor must be positive")
        if self.radius_reduction_interval < 1:
            raise ValueError("radius_reduction_interval must be at least 1")

    @property
    def effective_candidate_cap(self) -> int:
        """The purge threshold actually used by Algorithm 1."""
        return self.candidate_cap if self.candidate_cap is not None else 2 * self.kappa

    # ------------------------------------------------------------------ #
    # Derived loop bounds.
    # ------------------------------------------------------------------ #

    def sparsification_iterations(self, gamma: int) -> int:
        """Iteration bound of Algorithm 2's main loop for density ``gamma``."""
        paper_bound = max(1, gamma)
        if self.max_sparsification_iterations is None:
            return paper_bound
        return min(paper_bound, self.max_sparsification_iterations)

    def unclustered_iterations(self, params: SINRParameters) -> int:
        """Repetition bound of Algorithm 3 (paper: ``chi(5, 1 - eps)``)."""
        paper_bound = chi(5.0, 1.0 - params.epsilon)
        if self.unclustered_repetitions is None:
            return paper_bound
        return min(paper_bound, self.unclustered_repetitions)

    def radius_reduction_iterations(self, params: SINRParameters, r: float) -> int:
        """Repetition bound of Algorithm 5 (paper: ``chi(r + 1, 1 - eps)``)."""
        paper_bound = chi(r + 1.0, 1.0 - params.epsilon)
        if self.radius_reduction_repetitions is None:
            return paper_bound
        return min(paper_bound, self.radius_reduction_repetitions)

    def full_sparsification_levels(self, gamma: int) -> int:
        """Number of levels of Algorithm 4: ``log_{4/3} Gamma``."""
        if gamma <= 1:
            return 1
        return max(1, int(math.ceil(math.log(gamma) / math.log(4.0 / 3.0))))

    # ------------------------------------------------------------------ #
    # Presets.
    # ------------------------------------------------------------------ #

    @classmethod
    def fast(cls) -> "AlgorithmConfig":
        """Small constants for unit tests on tiny networks."""
        return cls(
            kappa=3,
            rho=2,
            sns_parameter=5,
            selector_size_factor=0.75,
            max_sparsification_iterations=6,
            unclustered_repetitions=2,
            radius_reduction_repetitions=4,
            radius_reduction_interval=2,
        )

    @classmethod
    def faithful(cls, params: Optional[SINRParameters] = None) -> "AlgorithmConfig":
        """The paper's worst-case constants (expensive; for spot checks only)."""
        params = params or SINRParameters.default()
        return cls(
            kappa=8,
            rho=6,
            sns_parameter=10,
            faithful_selectors=True,
            max_sparsification_iterations=None,
            unclustered_repetitions=None,
            radius_reduction_repetitions=None,
            adaptive_termination=False,
        )

    def scaled(self, size_factor: float) -> "AlgorithmConfig":
        """Copy with a different selector size factor."""
        return replace(self, selector_size_factor=size_factor)
