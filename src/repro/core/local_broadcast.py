"""Local broadcast (Algorithm 7, Theorem 2).

Every node has a message; the task is complete when every node's message has
been received by all of its communication-graph neighbours.  The algorithm:

1. build a 1-clustering of the whole network (Algorithm 6),
2. give every node a label via imperfect labeling (Lemma 11), so that every
   label appears O(1) times per cluster,
3. for each label value ``l = 1 .. Delta`` run the Sparse Network Schedule
   with exactly the label-``l`` nodes transmitting: their density is O(1), so
   by Lemma 4 each of them is heard within distance ``1 - eps``.

The result records which receivers got each sender's message so tests and
benchmarks can verify completion and count rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..simulation.engine import SINRSimulator
from ..simulation.messages import Message
from .clustering import ClusteringResult, build_clustering
from .config import AlgorithmConfig
from .labeling import LabelingResult, imperfect_labeling
from .primitives import run_sns


@dataclass
class LocalBroadcastResult:
    """Outcome of the local broadcast algorithm."""

    clustering: ClusteringResult
    labeling: LabelingResult
    delivered: Dict[int, Set[int]] = field(default_factory=dict)
    rounds_used: int = 0
    rounds_clustering: int = 0
    rounds_labeling: int = 0
    rounds_transmission: int = 0

    def receivers_of(self, uid: int) -> Set[int]:
        """Nodes that decoded ``uid``'s broadcast message."""
        return self.delivered.get(uid, set())

    def completed_for(self, network, uid: int) -> bool:
        """Whether every communication-graph neighbour of ``uid`` got its message."""
        return set(network.neighbors(uid)) <= self.receivers_of(uid)

    def completed(self, network) -> bool:
        """Whether the local broadcast task is complete for every node."""
        return all(self.completed_for(network, uid) for uid in network.uids)

    def completion_ratio(self, network) -> float:
        """Fraction of (node, neighbour) pairs served; 1.0 means task complete."""
        total = 0
        served = 0
        for uid in network.uids:
            for neighbor in network.neighbors(uid):
                total += 1
                if neighbor in self.receivers_of(uid):
                    served += 1
        return served / total if total else 1.0


def local_broadcast(
    sim: SINRSimulator,
    config: Optional[AlgorithmConfig] = None,
    payloads: Optional[Mapping[int, Tuple[int, ...]]] = None,
    gamma: Optional[int] = None,
    extra_sweeps: int = 0,
    phase: str = "local-broadcast",
) -> LocalBroadcastResult:
    """Algorithm 7: every node delivers its message to all of its neighbours.

    Parameters
    ----------
    sim:
        The simulator (all nodes awake, per the local broadcast model).
    config:
        Algorithm constants.
    payloads:
        Optional integer payload per sender, carried inside the broadcast
        messages.
    gamma:
        Density bound ``Delta``; defaults to the network's ``delta_bound``.
    extra_sweeps:
        Number of times the label sweep of step 3 is repeated.  The paper's
        single sweep suffices with worst-case constants; with the compact
        selectors a second sweep inexpensively covers residual misses and is
        counted in the reported rounds.
    """
    config = config or AlgorithmConfig()
    network = sim.network
    if gamma is None:
        gamma = network.delta_bound
    gamma = max(1, int(gamma))
    payloads = dict(payloads or {})
    start_round = sim.current_round

    clustering = build_clustering(sim, network.uids, gamma, config, phase=f"{phase}:clustering")
    rounds_clustering = sim.current_round - start_round

    labeling_start = sim.current_round
    labeling = imperfect_labeling(
        sim, network.uids, clustering.cluster_of, gamma, config, phase=f"{phase}:labeling"
    )
    rounds_labeling = sim.current_round - labeling_start

    transmission_start = sim.current_round
    delivered: Dict[int, Set[int]] = {uid: set() for uid in network.uids}
    by_label: Dict[int, List[int]] = {}
    for uid in network.uids:
        by_label.setdefault(labeling.labels[uid], []).append(uid)

    def message_for(uid: int) -> Message:
        return Message(
            sender=uid,
            tag="local-broadcast",
            cluster=clustering.cluster_of.get(uid),
            payload=tuple(payloads.get(uid, ())),
        )

    sweeps = 1 + max(0, extra_sweeps)
    for _ in range(sweeps):
        for label in range(1, gamma + 1):
            participants = by_label.get(label, [])
            outcome = run_sns(
                sim,
                participants,
                config,
                message_factory=message_for,
                phase=f"{phase}:label-{label}",
            )
            senders, receivers = outcome.result.delivery_pairs()
            for sender, listener in zip(senders.tolist(), receivers.tolist()):
                delivered[sender].add(listener)

    rounds_transmission = sim.current_round - transmission_start
    return LocalBroadcastResult(
        clustering=clustering,
        labeling=labeling,
        delivered=delivered,
        rounds_used=sim.current_round - start_round,
        rounds_clustering=rounds_clustering,
        rounds_labeling=rounds_labeling,
        rounds_transmission=rounds_transmission,
    )
