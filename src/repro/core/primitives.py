"""Basic SINR communication primitives (Section 3.2 of the paper).

Two primitives drive everything else:

* **Sparse Network Schedule (SNS, Lemma 4)** -- a schedule of length
  ``O(log N)`` guaranteeing that in a set of *constant density* every
  participant delivers its message to every point within distance
  ``1 - eps``.  We realize it with a seeded ``(N, k_gamma)``-ssf; the
  parameter ``k_gamma`` comes from :class:`~repro.core.config.
  AlgorithmConfig` (Lemma 4 sizes it by the packing constant of a ball of
  radius ``x`` where distant interference becomes negligible).

* **Selector schedules for close pairs** -- the wss / wcss executions used by
  the proximity-graph construction; those live in
  :mod:`repro.core.proximity`.

This module also provides the schedule caches so that repeated executions
(e.g. the ``Delta`` SNS runs of local broadcast) reuse the same globally
known schedule object, exactly as the paper's nodes would.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..selectors.ssf import TransmissionSchedule, greedy_random_ssf
from ..selectors.wcss import ClusterAwareSchedule, random_wcss
from ..selectors.wss import random_wss
from ..simulation.engine import SINRSimulator
from ..simulation.messages import Message
from ..simulation.schedule import MessageFactory, ScheduleResult, run_schedule
from .config import AlgorithmConfig


@lru_cache(maxsize=128)
def sparse_network_schedule(
    id_space: int,
    parameter: int,
    seed: int,
    size_factor: float,
) -> TransmissionSchedule:
    """The Sparse Network Schedule ``L_gamma`` of Lemma 4 (cached per parameters)."""
    length = max(1, int(size_factor * 3.0 * parameter * parameter * (math.log(max(id_space, 2)) + 2.0)))
    return greedy_random_ssf(id_space, parameter, seed=seed, max_rounds=length)


@lru_cache(maxsize=128)
def close_pair_selector(
    id_space: int,
    kappa: int,
    seed: int,
    size_factor: float,
    faithful: bool,
) -> TransmissionSchedule:
    """The ``(N, kappa)``-wss used by the unclustered proximity graph (cached)."""
    return random_wss(id_space, kappa, seed=seed, size_factor=size_factor, faithful=faithful)


@lru_cache(maxsize=128)
def cluster_close_pair_selector(
    id_space: int,
    kappa: int,
    rho: int,
    seed: int,
    size_factor: float,
    faithful: bool,
) -> ClusterAwareSchedule:
    """The ``(N, kappa, rho)``-wcss used by the clustered proximity graph (cached)."""
    return random_wcss(
        id_space, kappa, rho, seed=seed, size_factor=size_factor, faithful=faithful
    )


def sns_for(network_id_space: int, config: AlgorithmConfig) -> TransmissionSchedule:
    """Convenience accessor for the SNS matching a network/config pair."""
    return sparse_network_schedule(
        network_id_space,
        config.sns_parameter,
        config.selector_seed,
        config.selector_size_factor,
    )


def wss_for(network_id_space: int, config: AlgorithmConfig) -> TransmissionSchedule:
    """Convenience accessor for the close-pair wss matching a network/config pair."""
    return close_pair_selector(
        network_id_space,
        config.kappa,
        config.selector_seed,
        config.selector_size_factor,
        config.faithful_selectors,
    )


def wcss_for(network_id_space: int, config: AlgorithmConfig) -> ClusterAwareSchedule:
    """Convenience accessor for the cluster-aware wcss matching a network/config pair."""
    return cluster_close_pair_selector(
        network_id_space,
        config.kappa,
        config.rho,
        config.selector_seed,
        config.selector_size_factor,
        config.faithful_selectors,
    )


@dataclass
class SNSOutcome:
    """Result of one Sparse Network Schedule execution."""

    result: ScheduleResult
    rounds: int

    def received_from(self, listener: int) -> List[int]:
        """Senders whose message ``listener`` decoded during the execution."""
        return self.result.senders_heard_by(listener)


def run_sns(
    sim: SINRSimulator,
    participants: Iterable[int],
    config: AlgorithmConfig,
    message_factory: Optional[MessageFactory] = None,
    listeners: Optional[Iterable[int]] = None,
    phase: str = "sns",
    wake_on_reception: bool = False,
) -> SNSOutcome:
    """Execute the Sparse Network Schedule for the given participants.

    The participants are assumed to have constant density (that is what the
    callers -- local broadcast per label, radius reduction on a fully
    sparsified set -- guarantee); under that assumption Lemma 4 states every
    participant is heard within distance ``1 - eps``.  ``wake_on_reception``
    is forwarded to the schedule runner: global broadcast uses it so sleeping
    listeners are woken by (not merely informed through) their first decoded
    message.
    """
    schedule = sns_for(sim.network.id_space, config)
    before = sim.current_round
    result = run_schedule(
        sim,
        schedule,
        participants=participants,
        message_factory=message_factory,
        listeners=listeners,
        phase=phase,
        wake_on_reception=wake_on_reception,
    )
    return SNSOutcome(result=result, rounds=sim.current_round - before)


def broadcast_message_factory(tag: str, payloads: Mapping[int, Tuple[int, ...]]) -> MessageFactory:
    """Message factory attaching a per-sender integer payload tuple."""

    def factory(uid: int) -> Message:
        return Message(sender=uid, tag=tag, payload=tuple(payloads.get(uid, ())))

    return factory


def clustered_message_factory(
    tag: str, cluster_of: Mapping[int, int], payloads: Optional[Mapping[int, Tuple[int, ...]]] = None
) -> MessageFactory:
    """Message factory attaching the sender's cluster (and optional payload)."""

    def factory(uid: int) -> Message:
        payload = tuple(payloads.get(uid, ())) if payloads else ()
        return Message(sender=uid, tag=tag, cluster=cluster_of.get(uid), payload=payload)

    return factory
