"""Proximity-graph construction (Algorithm 1, Lemma 7) and neighbour exchange.

``ProximityGraphConstruction`` turns a (clustered or unclustered) set of
participating nodes into a constant-degree graph ``H`` containing every close
pair as an edge:

1. **Exchange phase** -- execute the witnessed (cluster-aware) strong
   selector; every node records who it heard and in which rounds.
2. **Filtering phase** -- a node ``v`` drops a candidate ``w`` if it heard
   some other node in a round in which ``w`` was scheduled (then ``v, w``
   cannot be a close pair); if too many candidates survive, all are dropped.
3. **Confirmation phase** -- candidates are announced back; an edge is kept
   only if both endpoints keep each other.

The filtering phase is columnar: the exchange's reception table (parallel
``round / sender / receiver`` arrays) is joined against the selector
schedule's cached inverse index (node -> scheduled rounds) with one sorted
key binary search -- a sparse matrix intersection -- instead of the
historical candidates x rounds Python loop (preserved in
:func:`build_proximity_graph_reference` for equivalence tests and the
before/after benchmark).

Because the physics is deterministic and the confirmation phase re-executes
the *same* schedule with the same transmitter sets, its receptions are
identical to the exchange phase; we therefore charge its rounds without
re-evaluating them (DESIGN.md §5).  The same replay argument powers
:func:`neighbor_exchange`, which lets ``H``-neighbours exchange fresh
payloads at the cost of one schedule length, and the distributed MIS driver
:func:`distributed_mis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..selectors._csr import expand_slices, sorted_lookup
from ..selectors.mis import iterated_local_minima_mis
from ..simulation.engine import SINRSimulator
from ..simulation.reference import (
    ReferenceScheduleResult,
    run_cluster_schedule_reference,
    run_schedule_reference,
)
from ..simulation.schedule import ScheduleResult, run_cluster_schedule, run_schedule
from .config import AlgorithmConfig
from .primitives import clustered_message_factory, wcss_for, wss_for


@dataclass
class ProximityGraph:
    """The output of Algorithm 1 on a participant set.

    ``adjacency`` is the symmetric edge set of ``H`` (only between
    participants, and -- in the clustered case -- only inside clusters).
    ``schedule_length`` is the length of the selector schedule ``S`` used;
    by Lemma 7, every edge of ``H`` corresponds to a pair of nodes that
    exchange messages during an execution of ``S``, which is what
    :func:`neighbor_exchange` exploits.
    """

    participants: Set[int]
    adjacency: Dict[int, Set[int]] = field(default_factory=dict)
    heard: Dict[int, List[int]] = field(default_factory=dict)
    candidates: Dict[int, Set[int]] = field(default_factory=dict)
    schedule_length: int = 0
    rounds_used: int = 0

    def neighbors(self, uid: int) -> Set[int]:
        """Neighbours of ``uid`` in ``H`` (empty set if isolated)."""
        return self.adjacency.get(uid, set())

    def degree(self, uid: int) -> int:
        """Degree of ``uid`` in ``H``."""
        return len(self.adjacency.get(uid, set()))

    def max_degree(self) -> int:
        """Largest degree in ``H``."""
        return max((len(adj) for adj in self.adjacency.values()), default=0)

    def edges(self) -> List[Tuple[int, int]]:
        """Edge list with ``u < v``."""
        result = []
        for u, adj in self.adjacency.items():
            for v in adj:
                if u < v:
                    result.append((u, v))
        return sorted(result)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge of ``H``."""
        return v in self.adjacency.get(u, set())


def _columnar_filtering(
    exchange: ScheduleResult,
    participants: Set[int],
    cluster_arr: np.ndarray,
    id_space: int,
    schedule_length: int,
    scheduled_rounds_of: "callable",
) -> Tuple[Dict[int, List[int]], Dict[int, Set[int]]]:
    """Vectorized heard lists + filtering verdicts for all participants.

    ``scheduled_rounds_of(unique_senders)`` must return a CSR pair
    ``(indptr, rounds)`` over the given unique sender array: the rounds in
    which each sender was scheduled to transmit.

    Returns ``(heard, surviving)``: first-heard sender lists and the
    candidate sets that survive the disqualification rule (before the
    candidate-cap purge).
    """
    ev_rounds, ev_senders, ev_receivers = exchange.event_table()

    part_mask = np.zeros(id_space + 1, dtype=bool)
    part_arr = np.fromiter((int(u) for u in participants), dtype=np.int64)
    part_mask[part_arr] = True

    # Only same-cluster receptions by participants are filtering evidence
    # (Alg. 1 remark): a close pair's partner is the closest *same-cluster*
    # node, so only a same-cluster reception in one of w's rounds
    # disqualifies w.
    relevant = part_mask[ev_receivers] & (
        cluster_arr[ev_senders] == cluster_arr[ev_receivers]
    )
    rv = ev_receivers[relevant]
    rs = ev_senders[relevant]
    rt = ev_rounds[relevant]
    order = np.argsort(rv, kind="stable")  # receiver-major, rounds ascending
    rv, rs, rt = rv[order], rs[order], rt[order]

    # First-heard dedup of (receiver, sender) pairs.
    pair_keys = rv * np.int64(id_space + 1) + rs
    _, first_positions = np.unique(pair_keys, return_index=True)
    first_positions.sort()
    hv = rv[first_positions]
    hs = rs[first_positions]

    heard: Dict[int, List[int]] = {int(u): [] for u in participants}
    seg_receivers, seg_starts = np.unique(hv, return_index=True)
    seg_bounds = np.append(seg_starts, len(hv))

    # Disqualification: v drops w iff v decoded somebody else in a round in
    # which w was scheduled.  Join the (receiver, round) -> sender reception
    # table against the schedule's inverse index by sorted key search.
    reception_keys = rv * np.int64(schedule_length) + rt
    unique_ws = np.unique(hs) if len(hs) else np.empty(0, dtype=np.int64)
    w_indptr, w_rounds = scheduled_rounds_of(unique_ws)
    w_pos = np.searchsorted(unique_ws, hs)
    lens = w_indptr[w_pos + 1] - w_indptr[w_pos] if len(hs) else np.empty(0, dtype=np.int64)
    pair_of = np.repeat(np.arange(len(hs), dtype=np.int64), lens)
    expanded_rounds = w_rounds[expand_slices(w_indptr[w_pos], lens)]
    probe_keys = hv[pair_of] * np.int64(schedule_length) + expanded_rounds
    hit, positions = sorted_lookup(reception_keys, probe_keys)
    other_sender = hit & (rs[positions] != hs[pair_of])
    disqualified = np.zeros(len(hs), dtype=bool)
    disqualified[pair_of[other_sender]] = True

    surviving: Dict[int, Set[int]] = {int(u): set() for u in participants}
    hs_list = hs.tolist()
    keep_list = (~disqualified).tolist()
    for i, v in enumerate(seg_receivers.tolist()):
        lo, hi = int(seg_bounds[i]), int(seg_bounds[i + 1])
        segment = hs_list[lo:hi]
        heard[v] = segment
        surviving[v] = {w for w, keep in zip(segment, keep_list[lo:hi]) if keep}
    return heard, surviving


def build_proximity_graph(
    sim: SINRSimulator,
    participants: Iterable[int],
    config: AlgorithmConfig,
    cluster_of: Optional[Mapping[int, int]] = None,
    phase: str = "proximity",
) -> ProximityGraph:
    """Run Algorithm 1 on the given participants.

    Parameters
    ----------
    sim:
        The simulator.
    participants:
        IDs of the nodes taking part (the current ``Active`` set).
    config:
        Algorithm constants (``kappa``, ``rho``, selector lengths).
    cluster_of:
        Current cluster of each participant; ``None`` selects the unclustered
        variant (every node in cluster 1, plain wss instead of wcss).
    """
    participants = set(participants)
    graph = ProximityGraph(participants=participants)
    if not participants:
        return graph

    id_space = sim.network.id_space
    start_round = sim.current_round

    cluster_arr = np.full(id_space + 1, -1, dtype=np.int64)
    if cluster_of is None:
        cluster_lookup: Dict[int, int] = {uid: 1 for uid in participants}
        for uid in participants:
            cluster_arr[uid] = 1
        schedule = wss_for(id_space, config)
        schedule_length = len(schedule)
        factory = clustered_message_factory("exchange", cluster_lookup)
        exchange = run_schedule(
            sim, schedule, participants, message_factory=factory, phase=f"{phase}:exchange"
        )
        inv_indptr, inv_rounds = schedule.inverse_table()

        def scheduled_rounds_of(ws: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            counts = inv_indptr[ws + 1] - inv_indptr[ws]
            indptr = np.zeros(len(ws) + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            return indptr, inv_rounds[expand_slices(inv_indptr[ws], counts)]

    else:
        cluster_lookup = {uid: int(cluster_of[uid]) for uid in participants}
        for uid, cluster in cluster_lookup.items():
            if 1 <= cluster <= id_space:
                cluster_arr[uid] = cluster
        schedule = wcss_for(id_space, config)
        schedule_length = len(schedule)
        factory = clustered_message_factory("exchange", cluster_lookup)
        exchange = run_cluster_schedule(
            sim,
            schedule,
            participants,
            cluster_of=cluster_lookup,
            message_factory=factory,
            phase=f"{phase}:exchange",
        )

        def scheduled_rounds_of(ws: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            parts = [
                schedule.rounds_of_array(int(w), cluster_lookup[int(w)]) for w in ws
            ]
            counts = np.fromiter((len(p) for p in parts), dtype=np.int64, count=len(parts))
            indptr = np.zeros(len(parts) + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            rounds = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            return indptr, rounds

    graph.schedule_length = schedule_length

    # ----------------------------- Filtering ----------------------------- #
    candidate_cap = config.effective_candidate_cap
    heard, surviving = _columnar_filtering(
        exchange, participants, cluster_arr, id_space, schedule_length, scheduled_rounds_of
    )
    graph.heard = heard
    candidates: Dict[int, Set[int]] = {}
    for v in participants:
        candidate_set = surviving[v]
        if len(candidate_set) > candidate_cap:
            candidate_set = set()
        candidates[v] = candidate_set
    graph.candidates = candidates

    # --------------------------- Confirmation --------------------------- #
    # The confirmation phase repeats the schedule once per kept candidate
    # (at most ``candidate_cap`` times).  The transmitter sets are identical
    # to the exchange phase, so by determinism of the physics the receptions
    # are identical too: v hears w again iff it heard w before.  We charge
    # the rounds and compute the outcome from the exchange-phase record.
    confirmation_repetitions = max(
        (len(c) for c in candidates.values()), default=0
    )
    confirmation_repetitions = min(confirmation_repetitions, candidate_cap)
    if confirmation_repetitions:
        sim.run_silent_rounds(
            confirmation_repetitions * schedule_length, phase=f"{phase}:confirm"
        )

    for v in participants:
        kept: Set[int] = set()
        heard_v = graph.heard.get(v, [])
        for w in candidates[v]:
            if w in candidates and v in candidates[w] and w in heard_v:
                kept.add(w)
        graph.adjacency[v] = kept
    # Symmetrize defensively (mutual condition above already implies symmetry).
    for v in participants:
        for w in graph.adjacency.get(v, set()):
            graph.adjacency.setdefault(w, set()).add(v)

    graph.rounds_used = sim.current_round - start_round
    return graph


def build_proximity_graph_reference(
    sim: SINRSimulator,
    participants: Iterable[int],
    config: AlgorithmConfig,
    cluster_of: Optional[Mapping[int, int]] = None,
    phase: str = "proximity",
) -> ProximityGraph:
    """The historical (set-and-loop) Algorithm 1, kept for equivalence tests.

    Executes through the reference schedule runners and the original
    candidates x rounds filtering loop; ``tests/test_columnar_equivalence.py``
    asserts :func:`build_proximity_graph` matches it structure-for-structure,
    and the schedule-pipeline benchmark times it as the "before" leg.
    """
    participants = set(participants)
    graph = ProximityGraph(participants=participants)
    if not participants:
        return graph

    id_space = sim.network.id_space
    start_round = sim.current_round

    if cluster_of is None:
        schedule = wss_for(id_space, config)
        schedule_length = len(schedule)
        cluster_lookup: Dict[int, int] = {uid: 1 for uid in participants}
        factory = clustered_message_factory("exchange", cluster_lookup)
        exchange: ReferenceScheduleResult = run_schedule_reference(
            sim, schedule, participants, message_factory=factory, phase=f"{phase}:exchange"
        )
        scheduled_rounds = {uid: set(schedule.rounds_of(uid)) for uid in participants}
    else:
        cluster_lookup = {uid: int(cluster_of[uid]) for uid in participants}
        schedule = wcss_for(id_space, config)
        schedule_length = len(schedule)
        factory = clustered_message_factory("exchange", cluster_lookup)
        exchange = run_cluster_schedule_reference(
            sim,
            schedule,
            participants,
            cluster_of=cluster_lookup,
            message_factory=factory,
            phase=f"{phase}:exchange",
        )
        scheduled_rounds = {
            uid: {
                t
                for t in range(len(schedule))
                if schedule.transmits_in(uid, cluster_lookup[uid], t)
            }
            for uid in participants
        }

    graph.schedule_length = schedule_length

    candidate_cap = config.effective_candidate_cap
    candidates: Dict[int, Set[int]] = {}
    for v in participants:
        events = exchange.heard_by(v)
        relevant = [
            e
            for e in events
            if e.message.cluster is None or e.message.cluster == cluster_lookup.get(v)
        ]
        heard_senders = []
        for e in relevant:
            if e.sender not in heard_senders:
                heard_senders.append(e.sender)
        graph.heard[v] = heard_senders
        candidate_set = set(heard_senders)
        heard_rounds = {e.round_index: e.sender for e in relevant}
        for w in heard_senders:
            for t in scheduled_rounds.get(w, ()):
                sender_heard = heard_rounds.get(t)
                if sender_heard is not None and sender_heard != w:
                    candidate_set.discard(w)
                    break
        if len(candidate_set) > candidate_cap:
            candidate_set = set()
        candidates[v] = candidate_set
    graph.candidates = candidates

    confirmation_repetitions = max((len(c) for c in candidates.values()), default=0)
    confirmation_repetitions = min(confirmation_repetitions, candidate_cap)
    if confirmation_repetitions:
        sim.run_silent_rounds(
            confirmation_repetitions * schedule_length, phase=f"{phase}:confirm"
        )

    for v in participants:
        kept: Set[int] = set()
        for w in candidates[v]:
            if w in candidates and v in candidates[w] and w in graph.heard.get(v, []):
                kept.add(w)
        graph.adjacency[v] = kept
    for v in participants:
        for w in graph.adjacency.get(v, set()):
            graph.adjacency.setdefault(w, set()).add(v)

    graph.rounds_used = sim.current_round - start_round
    return graph


def neighbor_exchange(
    sim: SINRSimulator,
    graph: ProximityGraph,
    payloads: Mapping[int, Tuple[int, ...]],
    phase: str = "exchange",
) -> Dict[int, Dict[int, Tuple[int, ...]]]:
    """Deliver a fresh payload across every edge of ``H`` (both directions).

    Realized by replaying the selector schedule with identical transmitter
    sets (identical receptions, new content); costs one schedule length of
    rounds.  Returns ``received[v][u] = payload of u`` for every edge
    ``{u, v}`` of ``H``.
    """
    sim.run_silent_rounds(graph.schedule_length, phase=phase)
    received: Dict[int, Dict[int, Tuple[int, ...]]] = {uid: {} for uid in graph.participants}
    for v in graph.participants:
        for u in graph.neighbors(v):
            received[v][u] = tuple(payloads.get(u, ()))
    return received


def distributed_mis(
    sim: SINRSimulator,
    graph: ProximityGraph,
    config: AlgorithmConfig,
    phase: str = "mis",
) -> Set[int]:
    """Compute a maximal independent set of ``H`` by local message exchange.

    Each iteration of the iterated-local-minima rule needs one status
    exchange between ``H``-neighbours, i.e. one replayed schedule execution.
    The rounds are charged accordingly; the resulting set is the
    lexicographically-first MIS of ``H`` (see :mod:`repro.selectors.mis`).
    """
    adjacency = {uid: set(graph.neighbors(uid)) for uid in graph.participants}
    mis, iterations = iterated_local_minima_mis(adjacency, max_iterations=config.mis_max_iterations)
    if iterations:
        sim.run_silent_rounds(iterations * max(graph.schedule_length, 1), phase=phase)
    return mis
