"""Proximity-graph construction (Algorithm 1, Lemma 7) and neighbour exchange.

``ProximityGraphConstruction`` turns a (clustered or unclustered) set of
participating nodes into a constant-degree graph ``H`` containing every close
pair as an edge:

1. **Exchange phase** -- execute the witnessed (cluster-aware) strong
   selector; every node records who it heard and in which rounds.
2. **Filtering phase** -- a node ``v`` drops a candidate ``w`` if it heard
   some other node in a round in which ``w`` was scheduled (then ``v, w``
   cannot be a close pair); if too many candidates survive, all are dropped.
3. **Confirmation phase** -- candidates are announced back; an edge is kept
   only if both endpoints keep each other.

Because the physics is deterministic and the confirmation phase re-executes
the *same* schedule with the same transmitter sets, its receptions are
identical to the exchange phase; we therefore charge its rounds without
re-evaluating them (DESIGN.md §5).  The same replay argument powers
:func:`neighbor_exchange`, which lets ``H``-neighbours exchange fresh
payloads at the cost of one schedule length, and the distributed MIS driver
:func:`distributed_mis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..selectors.mis import iterated_local_minima_mis
from ..simulation.engine import SINRSimulator
from ..simulation.messages import Message
from ..simulation.schedule import ScheduleResult, run_cluster_schedule, run_schedule
from .config import AlgorithmConfig
from .primitives import clustered_message_factory, wcss_for, wss_for


@dataclass
class ProximityGraph:
    """The output of Algorithm 1 on a participant set.

    ``adjacency`` is the symmetric edge set of ``H`` (only between
    participants, and -- in the clustered case -- only inside clusters).
    ``schedule_length`` is the length of the selector schedule ``S`` used;
    by Lemma 7, every edge of ``H`` corresponds to a pair of nodes that
    exchange messages during an execution of ``S``, which is what
    :func:`neighbor_exchange` exploits.
    """

    participants: Set[int]
    adjacency: Dict[int, Set[int]] = field(default_factory=dict)
    heard: Dict[int, List[int]] = field(default_factory=dict)
    candidates: Dict[int, Set[int]] = field(default_factory=dict)
    schedule_length: int = 0
    rounds_used: int = 0

    def neighbors(self, uid: int) -> Set[int]:
        """Neighbours of ``uid`` in ``H`` (empty set if isolated)."""
        return self.adjacency.get(uid, set())

    def degree(self, uid: int) -> int:
        """Degree of ``uid`` in ``H``."""
        return len(self.adjacency.get(uid, set()))

    def max_degree(self) -> int:
        """Largest degree in ``H``."""
        return max((len(adj) for adj in self.adjacency.values()), default=0)

    def edges(self) -> List[Tuple[int, int]]:
        """Edge list with ``u < v``."""
        result = []
        for u, adj in self.adjacency.items():
            for v in adj:
                if u < v:
                    result.append((u, v))
        return sorted(result)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge of ``H``."""
        return v in self.adjacency.get(u, set())


def build_proximity_graph(
    sim: SINRSimulator,
    participants: Iterable[int],
    config: AlgorithmConfig,
    cluster_of: Optional[Mapping[int, int]] = None,
    phase: str = "proximity",
) -> ProximityGraph:
    """Run Algorithm 1 on the given participants.

    Parameters
    ----------
    sim:
        The simulator.
    participants:
        IDs of the nodes taking part (the current ``Active`` set).
    config:
        Algorithm constants (``kappa``, ``rho``, selector lengths).
    cluster_of:
        Current cluster of each participant; ``None`` selects the unclustered
        variant (every node in cluster 1, plain wss instead of wcss).
    """
    participants = set(participants)
    graph = ProximityGraph(participants=participants)
    if not participants:
        return graph

    id_space = sim.network.id_space
    start_round = sim.current_round

    if cluster_of is None:
        schedule = wss_for(id_space, config)
        schedule_length = len(schedule)
        factory = clustered_message_factory("exchange", {uid: 1 for uid in participants})
        exchange = run_schedule(
            sim, schedule, participants, message_factory=factory, phase=f"{phase}:exchange"
        )
        scheduled_rounds = {uid: set(schedule.rounds_of(uid)) for uid in participants}
        cluster_lookup: Dict[int, int] = {uid: 1 for uid in participants}
    else:
        cluster_lookup = {uid: int(cluster_of[uid]) for uid in participants}
        schedule = wcss_for(id_space, config)
        schedule_length = len(schedule)
        factory = clustered_message_factory("exchange", cluster_lookup)
        exchange = run_cluster_schedule(
            sim,
            schedule,
            participants,
            cluster_of=cluster_lookup,
            message_factory=factory,
            phase=f"{phase}:exchange",
        )
        scheduled_rounds = {
            uid: {
                t
                for t in range(len(schedule))
                if schedule.transmits_in(uid, cluster_lookup[uid], t)
            }
            for uid in participants
        }

    graph.schedule_length = schedule_length

    # ----------------------------- Filtering ----------------------------- #
    candidate_cap = config.effective_candidate_cap
    candidates: Dict[int, Set[int]] = {}
    for v in participants:
        events = exchange.heard_by(v)
        # Only same-cluster senders are candidates (ignored otherwise, Alg. 1 remark).
        relevant = [
            e
            for e in events
            if e.message.cluster is None or e.message.cluster == cluster_lookup.get(v)
        ]
        heard_senders = []
        for e in relevant:
            if e.sender not in heard_senders:
                heard_senders.append(e.sender)
        graph.heard[v] = heard_senders
        candidate_set = set(heard_senders)
        # Filtering evidence: same-cluster receptions only (Alg. 1 remark).  A
        # close pair's partner is the closest *same-cluster* node, so only a
        # same-cluster reception in one of w's rounds disqualifies w.
        heard_rounds = {e.round_index: e.sender for e in relevant}
        for w in heard_senders:
            # Drop w if v heard somebody else in a round in which w was scheduled.
            for t in scheduled_rounds.get(w, ()):  # w transmitted in these rounds
                sender_heard = heard_rounds.get(t)
                if sender_heard is not None and sender_heard != w:
                    candidate_set.discard(w)
                    break
        if len(candidate_set) > candidate_cap:
            candidate_set = set()
        candidates[v] = candidate_set
    graph.candidates = candidates

    # --------------------------- Confirmation --------------------------- #
    # The confirmation phase repeats the schedule once per kept candidate
    # (at most ``candidate_cap`` times).  The transmitter sets are identical
    # to the exchange phase, so by determinism of the physics the receptions
    # are identical too: v hears w again iff it heard w before.  We charge
    # the rounds and compute the outcome from the exchange-phase record.
    confirmation_repetitions = max(
        (len(c) for c in candidates.values()), default=0
    )
    confirmation_repetitions = min(confirmation_repetitions, candidate_cap)
    if confirmation_repetitions:
        sim.run_silent_rounds(
            confirmation_repetitions * schedule_length, phase=f"{phase}:confirm"
        )

    for v in participants:
        kept: Set[int] = set()
        for w in candidates[v]:
            if w in candidates and v in candidates[w] and w in graph.heard.get(v, []):
                kept.add(w)
        graph.adjacency[v] = kept
    # Symmetrize defensively (mutual condition above already implies symmetry).
    for v in participants:
        for w in graph.adjacency.get(v, set()):
            graph.adjacency.setdefault(w, set()).add(v)

    graph.rounds_used = sim.current_round - start_round
    return graph


def neighbor_exchange(
    sim: SINRSimulator,
    graph: ProximityGraph,
    payloads: Mapping[int, Tuple[int, ...]],
    phase: str = "exchange",
) -> Dict[int, Dict[int, Tuple[int, ...]]]:
    """Deliver a fresh payload across every edge of ``H`` (both directions).

    Realized by replaying the selector schedule with identical transmitter
    sets (identical receptions, new content); costs one schedule length of
    rounds.  Returns ``received[v][u] = payload of u`` for every edge
    ``{u, v}`` of ``H``.
    """
    sim.run_silent_rounds(graph.schedule_length, phase=phase)
    received: Dict[int, Dict[int, Tuple[int, ...]]] = {uid: {} for uid in graph.participants}
    for v in graph.participants:
        for u in graph.neighbors(v):
            received[v][u] = tuple(payloads.get(u, ()))
    return received


def distributed_mis(
    sim: SINRSimulator,
    graph: ProximityGraph,
    config: AlgorithmConfig,
    phase: str = "mis",
) -> Set[int]:
    """Compute a maximal independent set of ``H`` by local message exchange.

    Each iteration of the iterated-local-minima rule needs one status
    exchange between ``H``-neighbours, i.e. one replayed schedule execution.
    The rounds are charged accordingly; the resulting set is the
    lexicographically-first MIS of ``H`` (see :mod:`repro.selectors.mis`).
    """
    adjacency = {uid: set(graph.neighbors(uid)) for uid in graph.participants}
    mis, iterations = iterated_local_minima_mis(adjacency, max_iterations=config.mis_max_iterations)
    if iterations:
        sim.run_silent_rounds(iterations * max(graph.schedule_length, 1), phase=phase)
    return mis
