"""Imperfect labeling of clusters (Lemma 11).

Given an ``r``-clustered set of density ``Gamma``, the labeling assigns every
node a label in ``[1, Gamma]`` such that within each cluster every label is
used at most ``c = O(1)`` times.  The construction follows the paper: run
full sparsification, which splits each cluster into O(1) trees rooted at the
surviving nodes; aggregate subtree sizes bottom-up along the recorded
schedules; then hand out consecutive label ranges top-down (the root keeps
the first label of its range and splits the rest among its children's
subtrees).

Both tree passes are message exchanges between confirmed parent/child pairs,
i.e. replays of the sparsification schedules; their rounds are charged via
the forest's ``replay_length`` values (see DESIGN.md §5 on deterministic
replay).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set

from ..simulation.engine import SINRSimulator
from .config import AlgorithmConfig
from .sparsification import SparsificationForest, full_sparsification


@dataclass
class LabelingResult:
    """Labels produced by the imperfect labeling algorithm."""

    labels: Dict[int, int]
    forest: SparsificationForest
    rounds_used: int = 0

    def label_of(self, uid: int) -> int:
        """Label of node ``uid``."""
        return self.labels[uid]

    def max_label(self) -> int:
        """Largest label handed out."""
        return max(self.labels.values(), default=0)

    def multiplicity(self, cluster_of: Mapping[int, int]) -> int:
        """Largest number of equal labels inside one cluster (the ``c`` of Lemma 11)."""
        counts: Dict[tuple, int] = {}
        for uid, label in self.labels.items():
            key = (cluster_of.get(uid), label)
            counts[key] = counts.get(key, 0) + 1
        return max(counts.values(), default=0)


def _subtree_sizes(forest: SparsificationForest, members: Set[int]) -> Dict[int, int]:
    """Bottom-up subtree sizes for every member of the forest."""
    sizes: Dict[int, int] = {uid: 1 for uid in members}
    # Children were always retired at a strictly smaller level than their
    # parent, so processing nodes by increasing removal level aggregates each
    # subtree before its total is forwarded upward.
    ordered = sorted(
        (uid for uid in members if uid in forest.parent),
        key=lambda uid: forest.removal_level.get(uid, 0),
    )
    for uid in ordered:
        parent = forest.parent[uid]
        sizes[parent] = sizes.get(parent, 1) + sizes[uid]
    return sizes


def _assign_labels(forest: SparsificationForest, sizes: Dict[int, int]) -> Dict[int, int]:
    """Top-down label ranges: node keeps the first label of its range."""
    labels: Dict[int, int] = {}
    for root in sorted(forest.roots):
        # Depth-first hand-out of the range [1, size(root)].
        stack: List[tuple] = [(root, 1)]
        while stack:
            node, start = stack.pop()
            labels[node] = start
            offset = start + 1
            for child in sorted(forest.children.get(node, set())):
                stack.append((child, offset))
                offset += sizes.get(child, 1)
    return labels


def imperfect_labeling(
    sim: SINRSimulator,
    participants: Iterable[int],
    cluster_of: Mapping[int, int],
    gamma: int,
    config: AlgorithmConfig,
    phase: str = "labeling",
) -> LabelingResult:
    """Lemma 11: build a ``c``-imperfect labeling of a clustered set."""
    participants = set(participants)
    start_round = sim.current_round
    forest = full_sparsification(
        sim,
        participants,
        gamma,
        config,
        cluster_of={uid: cluster_of[uid] for uid in participants},
        phase=f"{phase}:fullsparse",
    )
    sizes = _subtree_sizes(forest, participants)
    labels = _assign_labels(forest, sizes)
    for uid in participants:
        labels.setdefault(uid, 1)

    # Bottom-up and top-down tree communication: one replay of the recorded
    # schedules per direction.
    replay = sum(level.replay_length for level in forest.levels)
    if replay:
        sim.run_silent_rounds(2 * replay, phase=f"{phase}:tree-passes")

    return LabelingResult(
        labels=labels, forest=forest, rounds_used=sim.current_round - start_round
    )
