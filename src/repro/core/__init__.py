"""The paper's algorithms: clustering, broadcast, wake-up, leader election."""

from .clustering import ClusteringLevelStats, ClusteringResult, build_clustering
from .config import AlgorithmConfig
from .global_broadcast import (
    BroadcastPhase,
    GlobalBroadcastResult,
    global_broadcast,
    sms_broadcast,
)
from .labeling import LabelingResult, imperfect_labeling
from .leader_election import LeaderElectionResult, elect_leader
from .local_broadcast import LocalBroadcastResult, local_broadcast
from .primitives import SNSOutcome, run_sns, sns_for, wcss_for, wss_for
from .proximity import ProximityGraph, build_proximity_graph, distributed_mis, neighbor_exchange
from .radius_reduction import RadiusReductionResult, reduce_radius
from .sparsification import (
    SparsificationForest,
    SparsificationLevel,
    full_sparsification,
    sparsify,
    sparsify_unclustered,
)
from .wakeup import WakeupResult, solve_wakeup

__all__ = [
    "AlgorithmConfig",
    "BroadcastPhase",
    "ClusteringLevelStats",
    "ClusteringResult",
    "GlobalBroadcastResult",
    "LabelingResult",
    "LeaderElectionResult",
    "LocalBroadcastResult",
    "ProximityGraph",
    "RadiusReductionResult",
    "SNSOutcome",
    "SparsificationForest",
    "SparsificationLevel",
    "WakeupResult",
    "build_clustering",
    "build_proximity_graph",
    "distributed_mis",
    "elect_leader",
    "full_sparsification",
    "global_broadcast",
    "imperfect_labeling",
    "local_broadcast",
    "neighbor_exchange",
    "reduce_radius",
    "run_sns",
    "sms_broadcast",
    "sns_for",
    "solve_wakeup",
    "sparsify",
    "sparsify_unclustered",
    "wcss_for",
    "wss_for",
]
