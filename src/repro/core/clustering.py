"""The clustering algorithm (Algorithm 6, Theorem 1) -- the paper's headline result.

Starting from a completely unclustered network the algorithm produces a
1-clustering: every cluster fits inside a ball of constant radius, every unit
ball meets O(1) clusters, and every node knows its cluster ID.  It runs in
two parts:

* **Part 1 (downward)** -- repeated unclustered sparsification
  (Algorithm 3) with a geometrically shrinking density budget, producing a
  chain of nested node sets ``A_0 ⊇ A_1 ⊇ ... ⊇ A_m`` whose last set has
  constant density, together with parent links and replayable schedules.
* **Part 2 (upward)** -- the last set seeds singleton clusters; walking the
  chain backwards, every retired node inherits its parent's cluster (giving a
  2-clustering) and radius reduction (Algorithm 5) restores a 1-clustering
  before the next, denser set joins.

The result records the rounds consumed, the sparse "root" set (reused by
leader election and wake-up) and per-level statistics for the Figure 3/4
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..simulation.engine import SINRSimulator
from .config import AlgorithmConfig
from .radius_reduction import reduce_radius
from .sparsification import SparsificationLevel, sparsify_unclustered


@dataclass
class ClusteringLevelStats:
    """Per-level bookkeeping of the clustering run (used by experiments)."""

    level: int
    budget: int
    active_before: int
    active_after: int
    removed: int
    rounds_used: int


@dataclass
class ClusteringResult:
    """A 1-clustering of the participants plus execution statistics."""

    cluster_of: Dict[int, int]
    sparse_roots: Set[int]
    rounds_used: int = 0
    level_stats: List[ClusteringLevelStats] = field(default_factory=list)
    radius_reductions: int = 0

    def clusters(self) -> Dict[int, Set[int]]:
        """Mapping ``cluster ID -> members``."""
        result: Dict[int, Set[int]] = {}
        for uid, cluster in self.cluster_of.items():
            result.setdefault(cluster, set()).add(uid)
        return result

    def cluster_count(self) -> int:
        """Number of distinct clusters."""
        return len(set(self.cluster_of.values()))


def build_clustering(
    sim: SINRSimulator,
    participants: Optional[Iterable[int]] = None,
    gamma: Optional[int] = None,
    config: Optional[AlgorithmConfig] = None,
    phase: str = "clustering",
) -> ClusteringResult:
    """Algorithm 6: build a 1-clustering of ``participants``.

    Parameters
    ----------
    sim:
        The simulator.
    participants:
        IDs of the nodes to cluster; defaults to every node of the network.
    gamma:
        The density bound ``Gamma`` known to the nodes; defaults to the
        network's ``delta_bound``.
    config:
        Algorithm constants; defaults to :class:`AlgorithmConfig`'s defaults.
    """
    config = config or AlgorithmConfig()
    network = sim.network
    if participants is None:
        participants = list(network.uids)
    participants = sorted(set(participants))
    if gamma is None:
        gamma = network.delta_bound
    gamma = max(1, int(gamma))
    start_round = sim.current_round

    if len(participants) == 1:
        only = participants[0]
        return ClusteringResult(cluster_of={only: only}, sparse_roots={only}, rounds_used=0)

    # ---------------------------- Part 1: downward ---------------------------- #
    blocks: List[Tuple[int, List[SparsificationLevel]]] = []
    current: Set[int] = set(participants)
    budget = float(gamma)
    levels = config.full_sparsification_levels(gamma)
    stats: List[ClusteringLevelStats] = []
    level_counter = 0

    for _ in range(levels):
        if len(current) <= 1:
            break
        block_budget = max(1, int(round(budget)))
        before_round = sim.current_round
        sets, block_levels = sparsify_unclustered(
            sim, current, block_budget, config, phase=f"{phase}:down"
        )
        blocks.append((block_budget, block_levels))
        for lvl in block_levels:
            level_counter += 1
            stats.append(
                ClusteringLevelStats(
                    level=level_counter,
                    budget=block_budget,
                    active_before=len(lvl.surviving) + len(lvl.removed),
                    active_after=len(lvl.surviving),
                    removed=len(lvl.removed),
                    rounds_used=lvl.rounds_used,
                )
            )
        new_current = sets[-1]
        budget *= 3.0 / 4.0
        progressed = len(new_current) < len(current)
        current = set(new_current)
        if config.adaptive_termination and not progressed:
            break
        del before_round

    sparse_roots = set(current)

    # ----------------------------- Part 2: upward ----------------------------- #
    cluster_of: Dict[int, int] = {uid: uid for uid in sparse_roots}
    clustered: Set[int] = set(sparse_roots)
    radius_reductions = 0
    pending_since_reduction = 0

    for block_budget, block_levels in reversed(blocks):
        for level in reversed(block_levels):
            newcomers = {uid for uid in level.removed if uid not in clustered}
            if newcomers:
                # Replay the level's schedule: parents re-send their cluster ID
                # to their children (receptions identical to the recorded run).
                if level.replay_length:
                    sim.run_silent_rounds(level.replay_length, phase=f"{phase}:inherit")
                for uid in newcomers:
                    parent = level.parent.get(uid)
                    if parent is not None and parent in cluster_of:
                        cluster_of[uid] = cluster_of[parent]
                    else:
                        cluster_of[uid] = uid
                clustered |= newcomers
                pending_since_reduction += 1
            if pending_since_reduction >= config.radius_reduction_interval and len(clustered) > 1:
                reduction = reduce_radius(
                    sim,
                    clustered,
                    cluster_of,
                    max(2, block_budget),
                    config,
                    r=2.0,
                    phase=f"{phase}:radius",
                )
                cluster_of.update(reduction.cluster_of)
                radius_reductions += 1
                pending_since_reduction = 0

    # Any participant never touched by the chain keeps a singleton cluster.
    for uid in participants:
        cluster_of.setdefault(uid, uid)

    # Final radius reduction so the output is a genuine 1-clustering even when
    # the last levels were skipped by the interval setting.
    if pending_since_reduction and len(participants) > 1:
        reduction = reduce_radius(
            sim,
            participants,
            cluster_of,
            gamma,
            config,
            r=2.0,
            phase=f"{phase}:final-radius",
        )
        cluster_of.update(reduction.cluster_of)
        radius_reductions += 1

    result = ClusteringResult(
        cluster_of={uid: cluster_of[uid] for uid in participants},
        sparse_roots=sparse_roots,
        rounds_used=sim.current_round - start_round,
        level_stats=stats,
        radius_reductions=radius_reductions,
    )
    # Publish the assignment on the node objects for downstream consumers.
    for uid in participants:
        network.node(uid).cluster = result.cluster_of[uid]
    return result
