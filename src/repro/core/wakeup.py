"""The wake-up problem (Theorem 4).

Some nodes wake spontaneously at adversarially chosen rounds; every other
node must eventually be activated by receiving a message.  With a global
clock the paper's solution runs, at every round divisible by the algorithm's
period ``T``, a fresh execution of: cluster the spontaneously awake nodes
(which yields a constant-density subset -- the surviving roots), then run
SMSBroadcast from that subset, which activates the entire network.

The simulator realizes one such execution explicitly: it aligns the start to
the period boundary following the earliest spontaneous wake-up, clusters the
then-awake nodes, and broadcasts.  Nodes that wake spontaneously later are
simply already active by their own clock; the returned activation rounds take
the minimum of the two mechanisms, matching the problem definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Set

from ..simulation.engine import SINRSimulator
from .clustering import build_clustering
from .config import AlgorithmConfig
from .global_broadcast import GlobalBroadcastResult, sms_broadcast


@dataclass
class WakeupResult:
    """Outcome of the wake-up algorithm."""

    activation_round: Dict[int, int]
    spontaneous: Dict[int, int]
    execution_start: int
    broadcast: Optional[GlobalBroadcastResult] = None
    rounds_used: int = 0

    def all_active(self, network) -> bool:
        """Whether every node of the network was activated."""
        return set(self.activation_round) >= set(network.uids)

    def latency(self) -> int:
        """Rounds between the first spontaneous wake-up and the last activation."""
        if not self.activation_round:
            return 0
        first = min(self.spontaneous.values()) if self.spontaneous else 0
        return max(self.activation_round.values()) - first


def solve_wakeup(
    sim: SINRSimulator,
    spontaneous: Mapping[int, int],
    config: Optional[AlgorithmConfig] = None,
    gamma: Optional[int] = None,
    period: Optional[int] = None,
) -> WakeupResult:
    """Theorem 4: activate the whole network from spontaneously awake nodes.

    Parameters
    ----------
    sim:
        The simulator.
    spontaneous:
        Map from node ID to the round at which it wakes spontaneously.  Must
        be non-empty (otherwise nothing ever happens, as in the model).
    config, gamma:
        Algorithm constants and the density bound.
    period:
        The global-clock period ``T`` at which executions start; defaults to
        a crude upper bound derived from the network parameters.  The
        execution modelled here is the first one with a non-empty source set.
    """
    if not spontaneous:
        raise ValueError("the wake-up problem needs at least one spontaneously awake node")
    config = config or AlgorithmConfig()
    network = sim.network
    if gamma is None:
        gamma = network.delta_bound
    gamma = max(1, int(gamma))
    if period is None:
        period = max(1, 8 * gamma * max(1, network.id_space.bit_length()) * len(network.uids))

    earliest = min(spontaneous.values())
    execution_start = ((earliest + period - 1) // period) * period
    initially_awake = {uid for uid, r in spontaneous.items() if r <= execution_start}

    # Rounds before the execution starts are idle waiting on the global clock.
    start_round = sim.current_round
    sim.run_silent_rounds(max(0, execution_start - earliest), phase="wakeup:wait")

    clustering = build_clustering(
        sim, sorted(initially_awake), gamma, config, phase="wakeup:clustering"
    )
    sources = clustering.sparse_roots or set(initially_awake)
    broadcast = sms_broadcast(
        sim, sorted(sources), config=config, gamma=gamma, phase="wakeup:broadcast"
    )

    activation: Dict[int, int] = {}
    offset = execution_start
    for uid in network.uids:
        by_broadcast = None
        phase_index = broadcast.phase_of(uid)
        if phase_index is not None:
            # Activation round is approximated by the end of the phase in which
            # the node first received the message.
            rounds_so_far = sum(p.rounds_used for p in broadcast.phases[: phase_index + 1])
            by_broadcast = offset + rounds_so_far
        by_self = spontaneous.get(uid)
        candidates = [r for r in (by_broadcast, by_self) if r is not None]
        if candidates:
            activation[uid] = min(candidates)

    return WakeupResult(
        activation_round=activation,
        spontaneous=dict(spontaneous),
        execution_start=execution_start,
        broadcast=broadcast,
        rounds_used=sim.current_round - start_round,
    )
