"""Network sparsification (Section 4.1-4.2): Algorithms 2, 3 and 4.

* :func:`sparsify` -- Algorithm 2, one sparsification pass.  Repeatedly
  builds the proximity graph of the still-active nodes, selects an
  independent set (local minima in the clustered case, a full MIS in the
  unclustered case), and retires independent-set neighbours as *children* of
  their chosen parent.  The returned set (old actives plus parents) has
  density reduced by a constant factor in every dense cluster (Lemma 8).
* :func:`sparsify_unclustered` -- Algorithm 3, the unclustered wrapper that
  repeats Algorithm 2 enough times to reduce the *geometric* density
  (Lemma 9).
* :func:`full_sparsification` -- Algorithm 4, iterates Algorithm 2 with a
  geometrically shrinking density budget until only O(1) nodes per cluster
  remain, recording the parent/child forest and per-level schedules that the
  labeling and clustering algorithms later replay (Lemma 10).

Loop bounds follow :class:`~repro.core.config.AlgorithmConfig`; with
``adaptive_termination`` (the default) a loop stops as soon as an iteration
retires nobody, which cannot change any later outcome because the proximity
graph of an unchanged active set is itself unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..selectors.mis import local_minima
from ..simulation.engine import SINRSimulator
from .config import AlgorithmConfig
from .proximity import ProximityGraph, build_proximity_graph, distributed_mis, neighbor_exchange


@dataclass
class SparsificationLevel:
    """Result of one call to Algorithm 2 (one *level* of full sparsification)."""

    surviving: Set[int]
    removed: Set[int]
    parent: Dict[int, int] = field(default_factory=dict)
    children: Dict[int, Set[int]] = field(default_factory=dict)
    iterations: int = 0
    rounds_used: int = 0
    replay_length: int = 0

    def parent_of(self, uid: int) -> Optional[int]:
        """Parent of a removed node (``None`` for surviving nodes)."""
        return self.parent.get(uid)


@dataclass
class SparsificationForest:
    """Result of Algorithm 4: nested node sets and the parent/child forest."""

    sets: List[Set[int]]
    levels: List[SparsificationLevel]
    parent: Dict[int, int] = field(default_factory=dict)
    children: Dict[int, Set[int]] = field(default_factory=dict)
    removal_level: Dict[int, int] = field(default_factory=dict)
    rounds_used: int = 0

    @property
    def roots(self) -> Set[int]:
        """Nodes that were never retired (the final, sparsest set)."""
        return self.sets[-1] if self.sets else set()

    def tree_of(self, root: int) -> Set[int]:
        """All descendants of ``root`` (including ``root``)."""
        members = {root}
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for child in self.children.get(node, set()):
                if child not in members:
                    members.add(child)
                    frontier.append(child)
        return members

    def depth_of(self, uid: int) -> int:
        """Number of parent hops from ``uid`` to its root."""
        depth = 0
        current = uid
        while current in self.parent:
            current = self.parent[current]
            depth += 1
            if depth > len(self.parent) + 1:
                raise RuntimeError("parent pointers contain a cycle")
        return depth


def _assign_parents(
    active: Set[int],
    independent: Set[int],
    graph: ProximityGraph,
    parent: Dict[int, int],
    children: Dict[int, Set[int]],
) -> Set[int]:
    """Lines 6-9 of Algorithm 2: children choose the smallest adjacent parent."""
    new_children: Set[int] = set()
    for v in active:
        if v in independent:
            continue
        adjacent_parents = graph.neighbors(v) & independent
        if not adjacent_parents:
            continue
        chosen = min(adjacent_parents)
        parent[v] = chosen
        children.setdefault(chosen, set()).add(v)
        new_children.add(v)
    return new_children


def sparsify(
    sim: SINRSimulator,
    participants: Iterable[int],
    gamma: int,
    config: AlgorithmConfig,
    cluster_of: Optional[Mapping[int, int]] = None,
    phase: str = "sparsify",
) -> SparsificationLevel:
    """Algorithm 2: one sparsification pass over ``participants``.

    ``cluster_of`` selects the clustered variant (independent set = local
    minima of the proximity graph); ``None`` selects the unclustered variant
    (independent set = a maximal independent set, per Section 4.1).
    """
    active: Set[int] = set(participants)
    all_nodes = set(active)
    parent: Dict[int, int] = {}
    children: Dict[int, Set[int]] = {}
    parents_so_far: Set[int] = set()
    removed_so_far: Set[int] = set()

    start_round = sim.current_round
    iterations = config.sparsification_iterations(gamma)
    replay_length = 0
    performed = 0

    for _ in range(iterations):
        if len(active) <= 1:
            break
        performed += 1
        graph = build_proximity_graph(
            sim,
            active,
            config,
            cluster_of={uid: cluster_of[uid] for uid in active} if cluster_of else None,
            phase=f"{phase}:pgc",
        )
        replay_length += graph.schedule_length
        if cluster_of is None:
            independent = distributed_mis(sim, graph, config, phase=f"{phase}:mis")
        else:
            adjacency = {uid: graph.neighbors(uid) for uid in active}
            independent = local_minima(adjacency)
        new_children = _assign_parents(active, independent, graph, parent, children)
        if new_children:
            # Children announce their chosen parent (one replayed exchange).
            neighbor_exchange(
                sim, graph, {uid: (parent[uid],) for uid in new_children}, phase=f"{phase}:claim"
            )
            replay_length += graph.schedule_length
        new_parents = {v for v in active if children.get(v)}
        parents_so_far |= new_parents
        removed_so_far |= new_children
        active -= parents_so_far | removed_so_far
        if config.adaptive_termination and not new_children:
            break

    surviving = active | parents_so_far
    return SparsificationLevel(
        surviving=surviving,
        removed=all_nodes - surviving,
        parent=parent,
        children=children,
        iterations=performed,
        rounds_used=sim.current_round - start_round,
        replay_length=replay_length,
    )


def sparsify_unclustered(
    sim: SINRSimulator,
    participants: Iterable[int],
    gamma: int,
    config: AlgorithmConfig,
    phase: str = "sparsifyU",
) -> Tuple[List[Set[int]], List[SparsificationLevel]]:
    """Algorithm 3: repeated unclustered sparsification.

    Returns the chain of node sets ``X_0 ⊇ X_1 ⊇ ... ⊇ X_l`` together with
    the per-repetition results (which carry the parent links and replayable
    schedules, per Lemma 9).
    """
    current: Set[int] = set(participants)
    sets: List[Set[int]] = [set(current)]
    levels: List[SparsificationLevel] = []
    repetitions = config.unclustered_iterations(sim.network.params)
    for _ in range(repetitions):
        if len(current) <= 1:
            break
        level = sparsify(sim, current, gamma, config, cluster_of=None, phase=phase)
        levels.append(level)
        sets.append(set(level.surviving))
        if config.adaptive_termination and not level.removed:
            break
        current = set(level.surviving)
    return sets, levels


def full_sparsification(
    sim: SINRSimulator,
    participants: Iterable[int],
    gamma: int,
    config: AlgorithmConfig,
    cluster_of: Optional[Mapping[int, int]] = None,
    phase: str = "fullsparse",
) -> SparsificationForest:
    """Algorithm 4: iterate Algorithm 2 until each cluster retains O(1) nodes.

    The per-level density budget shrinks by a factor 3/4 every level, as in
    the paper; the forest of parent pointers (one tree per surviving root,
    O(1) roots per cluster) is returned for the labeling and clustering
    algorithms to replay.
    """
    current: Set[int] = set(participants)
    start_round = sim.current_round
    forest = SparsificationForest(sets=[set(current)], levels=[])
    budget = float(max(gamma, 1))
    levels = config.full_sparsification_levels(gamma)

    for level_index in range(1, levels + 1):
        if len(current) <= 1:
            break
        level = sparsify(
            sim,
            current,
            max(1, int(round(budget))),
            config,
            cluster_of=cluster_of,
            phase=f"{phase}:L{level_index}",
        )
        forest.levels.append(level)
        forest.sets.append(set(level.surviving))
        for child, parent in level.parent.items():
            forest.parent[child] = parent
            forest.children.setdefault(parent, set()).add(child)
            forest.removal_level[child] = level_index
        current = set(level.surviving)
        budget *= 3.0 / 4.0
        if config.adaptive_termination and not level.removed:
            break

    forest.rounds_used = sim.current_round - start_round
    return forest
