"""Global broadcast / sparse multiple-source broadcast (Algorithm 8, Theorem 3).

The sparse multiple source broadcast (SMSB) problem starts from a set ``S``
of pairwise-distant sources holding the broadcast message; it is solved when
every node has the message *and* every node has performed a successful local
broadcast to its communication-graph neighbours.  Global broadcast is the
special case ``|S| = 1``.

The algorithm proceeds in phases.  Nodes awakened in the previous phase are
1-clustered; a phase (i) gives them labels via imperfect labeling, (ii) runs
the Sparse Network Schedule once per label so each of them performs a local
broadcast -- newly awakened listeners inherit the cluster of the node that
woke them, yielding a 2-clustering -- and (iii) runs radius reduction on the
newly awakened set to restore a 1-clustering for the next phase.  After ``D``
phases the whole network is awake.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..simulation.engine import SINRSimulator
from ..simulation.messages import Message
from .config import AlgorithmConfig
from .labeling import imperfect_labeling
from .primitives import run_sns
from .radius_reduction import reduce_radius


@dataclass
class BroadcastPhase:
    """Statistics of one phase of the global broadcast (Figure 1 material)."""

    index: int
    broadcasters: int
    newly_awakened: int
    clusters_before: int
    clusters_after_inherit: int
    clusters_after_reduction: int
    rounds_used: int


@dataclass
class GlobalBroadcastResult:
    """Outcome of SMSBroadcast."""

    sources: Set[int]
    awakened_in_phase: Dict[int, int] = field(default_factory=dict)
    cluster_of: Dict[int, int] = field(default_factory=dict)
    delivered: Dict[int, Set[int]] = field(default_factory=dict)
    phases: List[BroadcastPhase] = field(default_factory=list)
    rounds_used: int = 0

    def reached(self) -> Set[int]:
        """All nodes that hold the broadcast message (sources included)."""
        return set(self.awakened_in_phase)

    def reached_all(self, network) -> bool:
        """Whether every node of the network was reached."""
        return self.reached() >= set(network.uids)

    def phase_of(self, uid: int) -> Optional[int]:
        """The phase in which ``uid`` was awakened (0 for sources)."""
        return self.awakened_in_phase.get(uid)

    def local_broadcast_completed(self, network) -> bool:
        """Condition (b) of the SMSB problem: every awake node reached its neighbours."""
        for uid in self.reached():
            if not set(network.neighbors(uid)) <= self.delivered.get(uid, set()):
                return False
        return True


def sms_broadcast(
    sim: SINRSimulator,
    sources: Iterable[int],
    config: Optional[AlgorithmConfig] = None,
    gamma: Optional[int] = None,
    max_phases: Optional[int] = None,
    payload: Tuple[int, ...] = (),
    phase: str = "smsb",
) -> GlobalBroadcastResult:
    """Algorithm 8: sparse multiple-source broadcast from ``sources``.

    All non-source nodes are put to sleep (non-spontaneous wake-up model);
    asleep nodes can listen and wake on their first reception, but do not
    transmit until the phase after they wake.
    """
    config = config or AlgorithmConfig()
    network = sim.network
    if gamma is None:
        gamma = network.delta_bound
    gamma = max(1, int(gamma))
    source_set = {int(uid) for uid in sources}
    if not source_set:
        return GlobalBroadcastResult(sources=set())
    all_uids = list(network.uids)
    start_round = sim.current_round

    sim.put_all_to_sleep(except_for=source_set)
    result = GlobalBroadcastResult(sources=set(source_set))
    for uid in source_set:
        result.awakened_in_phase[uid] = 0
        result.cluster_of[uid] = uid
    result.delivered = {uid: set() for uid in all_uids}

    def broadcast_message(cluster_lookup: Mapping[int, int]):
        # Snapshot the lookup: ScheduleResult materializes messages lazily,
        # so a factory must capture send-time state, not the live dict that
        # the wave loop keeps mutating.
        snapshot = dict(cluster_lookup)

        def factory(uid: int) -> Message:
            return Message(
                sender=uid,
                tag="broadcast",
                cluster=snapshot.get(uid, uid),
                payload=payload,
            )

        return factory

    # ------------------------- Phase 1 seed (line 1) ------------------------- #
    phase_start = sim.current_round
    outcome = run_sns(
        sim,
        sorted(source_set),
        config,
        message_factory=broadcast_message(result.cluster_of),
        listeners=all_uids,
        phase=f"{phase}:seed",
        wake_on_reception=True,
    )
    current_wave: Set[int] = set()
    senders, receivers = outcome.result.delivery_pairs()
    for sender, listener in zip(senders.tolist(), receivers.tolist()):
        result.delivered[sender].add(listener)
    first_receivers, first_senders, _ = outcome.result.first_receptions()
    for listener, first_sender in zip(first_receivers.tolist(), first_senders.tolist()):
        if listener not in result.awakened_in_phase:
            result.awakened_in_phase[listener] = 1
            # The seed messages carry cluster_lookup.get(sender, sender).
            result.cluster_of[listener] = result.cluster_of.get(first_sender, first_sender) or first_sender
            current_wave.add(listener)
    sim.wake(current_wave)
    result.phases.append(
        BroadcastPhase(
            index=0,
            broadcasters=len(source_set),
            newly_awakened=len(current_wave),
            clusters_before=len(source_set),
            clusters_after_inherit=len({result.cluster_of[u] for u in current_wave} | set()),
            clusters_after_reduction=len({result.cluster_of[u] for u in current_wave} | set()),
            rounds_used=sim.current_round - phase_start,
        )
    )

    if max_phases is None:
        max_phases = len(all_uids) + 1

    # ------------------------------ Main phases ------------------------------ #
    phase_index = 0
    while current_wave and phase_index < max_phases:
        phase_index += 1
        phase_start = sim.current_round
        wave = set(current_wave)
        clusters_before = len({result.cluster_of[u] for u in wave})

        # Stage 1: imperfect labeling of the wave.
        labeling = imperfect_labeling(
            sim, wave, result.cluster_of, gamma, config, phase=f"{phase}:p{phase_index}:labeling"
        )

        # Stage 2: local broadcast from the wave, one SNS execution per label.
        by_label: Dict[int, List[int]] = {}
        for uid in wave:
            by_label.setdefault(labeling.labels[uid], []).append(uid)
        newly_awakened: Set[int] = set()
        for label in range(1, gamma + 1):
            participants = by_label.get(label, [])
            outcome = run_sns(
                sim,
                participants,
                config,
                message_factory=broadcast_message(result.cluster_of),
                listeners=all_uids,
                phase=f"{phase}:p{phase_index}:label-{label}",
                wake_on_reception=True,
            )
            senders, receivers = outcome.result.delivery_pairs()
            for sender, listener in zip(senders.tolist(), receivers.tolist()):
                result.delivered[sender].add(listener)
            first_receivers, first_senders, _ = outcome.result.first_receptions()
            for listener, first_sender in zip(first_receivers.tolist(), first_senders.tolist()):
                if listener not in result.awakened_in_phase:
                    result.awakened_in_phase[listener] = phase_index + 1
                    # Wave messages carry cluster_lookup.get(sender, sender).
                    result.cluster_of[listener] = (
                        result.cluster_of.get(first_sender, first_sender) or first_sender
                    )
                    newly_awakened.add(listener)
        sim.wake(newly_awakened)
        clusters_inherited = len({result.cluster_of[u] for u in newly_awakened}) if newly_awakened else 0

        # Stage 3: radius reduction of the newly awakened set (2-clustering -> 1-clustering).
        clusters_reduced = clusters_inherited
        if len(newly_awakened) > 1:
            reduction = reduce_radius(
                sim,
                newly_awakened,
                result.cluster_of,
                gamma,
                config,
                r=2.0,
                phase=f"{phase}:p{phase_index}:radius",
            )
            for uid in newly_awakened:
                result.cluster_of[uid] = reduction.cluster_of[uid]
            clusters_reduced = len({result.cluster_of[u] for u in newly_awakened})

        result.phases.append(
            BroadcastPhase(
                index=phase_index,
                broadcasters=len(wave),
                newly_awakened=len(newly_awakened),
                clusters_before=clusters_before,
                clusters_after_inherit=clusters_inherited,
                clusters_after_reduction=clusters_reduced,
                rounds_used=sim.current_round - phase_start,
            )
        )
        current_wave = newly_awakened

    result.rounds_used = sim.current_round - start_round
    return result


def global_broadcast(
    sim: SINRSimulator,
    source: int,
    config: Optional[AlgorithmConfig] = None,
    gamma: Optional[int] = None,
    max_phases: Optional[int] = None,
    payload: Tuple[int, ...] = (),
) -> GlobalBroadcastResult:
    """Global broadcast from a single source (Theorem 3, ``|S| = 1``)."""
    return sms_broadcast(
        sim,
        [source],
        config=config,
        gamma=gamma,
        max_phases=max_phases,
        payload=payload,
        phase="global-broadcast",
    )
