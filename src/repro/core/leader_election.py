"""Leader election (Theorem 5).

Exactly one node of the network must end up elected.  Following the paper:

1. cluster the whole network (Algorithm 6); the surviving sparse roots form a
   non-empty, constant-density candidate set ``S``;
2. binary-search over the ID space: for a candidate range ``[lo, mid]``, run
   SMSBroadcast with sources ``S ∩ [lo, mid]``; because a broadcast from a
   non-empty source set reaches *every* node while an empty one reaches none,
   all nodes observe the same bit ("did I receive anything during this
   execution?") and narrow the range consistently;
3. after ``O(log N)`` executions the range is a single ID -- the leader.

As in the paper, the algorithm assumes the communication graph is connected:
the "did I receive anything" bit is consistent across nodes only when a
broadcast from a non-empty source set reaches everyone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..simulation.engine import SINRSimulator
from .clustering import ClusteringResult, build_clustering
from .config import AlgorithmConfig
from .global_broadcast import sms_broadcast


@dataclass
class LeaderElectionResult:
    """Outcome of the leader election algorithm."""

    leader: int
    candidates: Set[int]
    probes: List[Tuple[int, int, bool]] = field(default_factory=list)
    clustering: Optional[ClusteringResult] = None
    rounds_used: int = 0

    def probe_count(self) -> int:
        """Number of binary-search probes (SMSBroadcast executions)."""
        return len(self.probes)


def elect_leader(
    sim: SINRSimulator,
    config: Optional[AlgorithmConfig] = None,
    gamma: Optional[int] = None,
) -> LeaderElectionResult:
    """Theorem 5: elect exactly one leader in the whole network."""
    config = config or AlgorithmConfig()
    network = sim.network
    if gamma is None:
        gamma = network.delta_bound
    gamma = max(1, int(gamma))
    start_round = sim.current_round

    clustering = build_clustering(sim, network.uids, gamma, config, phase="leader:clustering")
    candidates = set(clustering.sparse_roots) or set(network.uids)

    lo, hi = 1, network.id_space
    probes: List[Tuple[int, int, bool]] = []
    # Narrow [lo, hi] while keeping the invariant that it contains min(candidates').
    while lo < hi:
        mid = (lo + hi) // 2
        probe_sources = sorted(uid for uid in candidates if lo <= uid <= mid)
        broadcast = sms_broadcast(
            sim, probe_sources, config=config, gamma=gamma, phase=f"leader:probe-{lo}-{mid}"
        )
        non_empty = bool(probe_sources) and broadcast.reached_all(network)
        probes.append((lo, mid, non_empty))
        if non_empty:
            hi = mid
        else:
            lo = mid + 1

    leader = lo
    if leader not in candidates:
        # The binary search pinpoints the smallest candidate ID; fall back to
        # it explicitly if the range degenerated (e.g. single-node networks).
        leader = min(candidates)

    # The elected leader announces itself with one final broadcast so every
    # node learns the outcome, as in the paper's problem statement.
    sms_broadcast(sim, [leader], config=config, gamma=gamma, phase="leader:announce")

    return LeaderElectionResult(
        leader=leader,
        candidates=candidates,
        probes=probes,
        clustering=clustering,
        rounds_used=sim.current_round - start_round,
    )
