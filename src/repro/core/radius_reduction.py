"""Radius reduction of a clustering (Algorithm 5, Lemma 12).

Given an ``r``-clustering (``r = O(1)``) of a node set ``X``, build a
1-clustering of ``X``: repeatedly

1. fully sparsify ``X`` (O(1) survivors per cluster),
2. let the survivors run the Sparse Network Schedule and compute a maximal
   independent set ``D`` of the graph of pairs that exchanged messages,
3. let ``D`` run the Sparse Network Schedule again; every node hearing some
   ``u`` in ``D`` joins the new cluster centred at ``u``,
4. drop ``D`` and the newly assigned nodes and repeat for the rest.

Every ball of radius 1 ends up intersecting O(1) new clusters because the
new centres (elements of the maximal independent sets) are pairwise more
than ``1 - eps`` apart within an iteration and only ``chi(r+1, 1-eps)``
iterations are needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set

from ..selectors.mis import iterated_local_minima_mis
from ..simulation.engine import SINRSimulator
from ..simulation.messages import Message
from .config import AlgorithmConfig
from .primitives import run_sns
from .sparsification import full_sparsification


@dataclass
class RadiusReductionResult:
    """Outcome of Algorithm 5."""

    cluster_of: Dict[int, int]
    centers: Set[int] = field(default_factory=set)
    iterations: int = 0
    rounds_used: int = 0
    unassigned: Set[int] = field(default_factory=set)


def reduce_radius(
    sim: SINRSimulator,
    participants: Iterable[int],
    cluster_of: Mapping[int, int],
    gamma: int,
    config: AlgorithmConfig,
    r: float = 2.0,
    phase: str = "radius",
) -> RadiusReductionResult:
    """Algorithm 5: transform an ``r``-clustering of ``participants`` into a 1-clustering."""
    remaining: Set[int] = set(participants)
    all_nodes = set(remaining)
    start_round = sim.current_round
    new_cluster: Dict[int, int] = {}
    centers: Set[int] = set()

    max_iterations = max(1, config.radius_reduction_iterations(sim.network.params, r))
    iterations = 0
    for _ in range(max_iterations):
        if not remaining:
            break
        iterations += 1

        forest = full_sparsification(
            sim,
            remaining,
            gamma,
            config,
            cluster_of={uid: cluster_of[uid] for uid in remaining if uid in cluster_of},
            phase=f"{phase}:fullsparse",
        )
        survivors = forest.roots & remaining if forest.roots else set(remaining)
        if not survivors:
            survivors = set(remaining)

        # Survivors run SNS; pairs that exchange messages form the graph G.
        outcome = run_sns(
            sim, survivors, config, listeners=sorted(survivors), phase=f"{phase}:sns-survivors"
        )
        adjacency: Dict[int, Set[int]] = {uid: set() for uid in survivors}
        for v in survivors:
            for u in outcome.received_from(v):
                if u in survivors and outcome.result.exchanged(u, v):
                    adjacency[v].add(u)
                    adjacency[u].add(v)
        mis, mis_iterations = iterated_local_minima_mis(adjacency)
        if mis_iterations:
            # Status exchanges between G-neighbours: replay the SNS per iteration.
            sim.run_silent_rounds(mis_iterations * outcome.rounds, phase=f"{phase}:mis")
        if not mis:
            mis = {min(survivors)}

        # New centres broadcast; listeners are all still-unassigned nodes.
        def center_message(uid: int) -> Message:
            return Message(sender=uid, tag="new-cluster", cluster=uid)

        assignment_outcome = run_sns(
            sim,
            sorted(mis),
            config,
            message_factory=center_message,
            listeners=sorted(remaining - mis),
            phase=f"{phase}:sns-centers",
        )
        newly_assigned: Set[int] = set()
        for v in sorted(remaining - mis):
            heard = assignment_outcome.received_from(v)
            chosen = next((u for u in heard if u in mis), None)
            if chosen is not None:
                new_cluster[v] = chosen
                newly_assigned.add(v)
        for center in mis:
            new_cluster[center] = center
        centers |= mis

        progressed = bool(mis | newly_assigned)
        remaining -= mis | newly_assigned
        if config.adaptive_termination and not progressed:
            break

    # Nodes the iteration budget did not reach keep a degenerate singleton
    # cluster centred at themselves; the paper's worst-case iteration count
    # guarantees this never happens, and tests assert it stays empty.
    unassigned = {uid for uid in all_nodes if uid not in new_cluster}
    for uid in unassigned:
        new_cluster[uid] = uid
        centers.add(uid)

    return RadiusReductionResult(
        cluster_of=new_cluster,
        centers=centers,
        iterations=iterations,
        rounds_used=sim.current_round - start_round,
        unassigned=unassigned,
    )
