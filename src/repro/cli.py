"""Command-line interface: run the paper's algorithms from a shell.

The CLI builds a deployment, runs one of the algorithms on the SINR
simulator and prints a short report.  It exists so that the reproduction can
be exercised without writing Python, e.g.::

    repro-sim cluster --deployment hotspots --nodes 48 --seed 7
    repro-sim local-broadcast --deployment uniform --nodes 40
    repro-sim global-broadcast --deployment strip --hops 6
    repro-sim leader-election --deployment ring --nodes 30
    repro-sim cluster --deployment uniform --nodes 2000 --area 12 --backend lazy
    repro-sim gadget --delta 12

(or ``python -m repro.cli ...``).  Every command accepts ``--seed`` and the
``--preset`` of algorithm constants (``fast`` or ``default``); deployments
map onto the generators of :mod:`repro.sinr.deployment`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import validate_clustering
from .core import (
    AlgorithmConfig,
    build_clustering,
    elect_leader,
    global_broadcast,
    local_broadcast,
)
from .lowerbound import (
    build_gadget,
    check_blocking_property,
    check_target_property,
    lower_bound_parameters,
    measure_gadget_delivery,
    round_robin_algorithm,
)
from .simulation import SINRSimulator
from .sinr import deployment
from .sinr.backends import BACKENDS


def _config_for(preset: str) -> AlgorithmConfig:
    if preset == "fast":
        return AlgorithmConfig.fast()
    if preset == "default":
        return AlgorithmConfig()
    raise ValueError(f"unknown preset {preset!r}")


def _build_network(args: argparse.Namespace):
    kind = args.deployment
    backend = getattr(args, "backend", "dense")
    if kind == "uniform":
        return deployment.uniform_random(
            args.nodes, area_side=args.area, seed=args.seed, backend=backend
        )
    if kind == "hotspots":
        per_spot = max(1, args.nodes // max(1, args.hotspots))
        return deployment.gaussian_hotspots(
            args.hotspots, per_spot, spread=0.18, separation=1.6, seed=args.seed, backend=backend
        )
    if kind == "strip":
        return deployment.connected_strip(
            hops=args.hops, nodes_per_hop=args.nodes_per_hop, seed=args.seed, backend=backend
        )
    if kind == "line":
        return deployment.line(args.nodes, seed=args.seed, backend=backend)
    if kind == "ring":
        per_cluster = max(1, args.nodes // max(1, args.clusters))
        return deployment.two_hop_clusters(
            args.clusters, per_cluster, seed=args.seed, backend=backend
        )
    raise ValueError(f"unknown deployment {kind!r}")


def _add_network_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deployment",
        choices=["uniform", "hotspots", "strip", "line", "ring"],
        default="uniform",
        help="deployment generator to use",
    )
    parser.add_argument("--nodes", type=int, default=40, help="number of nodes (uniform/hotspots/line/ring)")
    parser.add_argument("--area", type=float, default=3.0, help="side of the square area (uniform)")
    parser.add_argument("--hotspots", type=int, default=4, help="number of hotspots (hotspots)")
    parser.add_argument("--hops", type=int, default=5, help="number of hops (strip)")
    parser.add_argument("--nodes-per-hop", type=int, default=4, help="nodes per hop (strip)")
    parser.add_argument("--clusters", type=int, default=5, help="number of clusters (ring)")
    parser.add_argument("--seed", type=int, default=0, help="deployment seed")
    parser.add_argument(
        "--preset", choices=["fast", "default"], default="fast", help="algorithm constants preset"
    )
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="dense",
        help="physics backend: dense (O(n^2) gain matrix) or lazy (O(n) memory)",
    )


def _cmd_cluster(args: argparse.Namespace) -> int:
    network = _build_network(args)
    sim = SINRSimulator(network)
    config = _config_for(args.preset)
    print(network.describe())
    result = build_clustering(sim, config=config)
    report = validate_clustering(network, result.cluster_of, max_radius=2.0)
    print(f"clusters: {result.cluster_count()}")
    print(f"rounds: {result.rounds_used}")
    print(f"max cluster radius: {report.max_radius:.2f}")
    print(f"max clusters per unit ball: {report.max_clusters_per_unit_ball}")
    print(f"valid clustering: {report.valid}")
    return 0 if report.valid else 1


def _cmd_local_broadcast(args: argparse.Namespace) -> int:
    network = _build_network(args)
    sim = SINRSimulator(network)
    config = _config_for(args.preset)
    print(network.describe())
    result = local_broadcast(sim, config=config)
    completed = result.completed(network)
    print(f"rounds: {result.rounds_used}")
    print(f"  clustering:   {result.rounds_clustering}")
    print(f"  labeling:     {result.rounds_labeling}")
    print(f"  transmission: {result.rounds_transmission}")
    print(f"completed: {completed}")
    return 0 if completed else 1


def _cmd_global_broadcast(args: argparse.Namespace) -> int:
    network = _build_network(args)
    sim = SINRSimulator(network)
    config = _config_for(args.preset)
    source = args.source if args.source is not None else network.uids[0]
    print(network.describe())
    result = global_broadcast(sim, source=source, config=config)
    reached = result.reached_all(network)
    print(f"source: {source}")
    print(f"phases: {len(result.phases)}")
    print(f"rounds: {result.rounds_used}")
    print(f"reached all nodes: {reached}")
    for phase in result.phases:
        print(
            f"  phase {phase.index}: broadcasters={phase.broadcasters} "
            f"newly_awakened={phase.newly_awakened} rounds={phase.rounds_used}"
        )
    return 0 if reached else 1


def _cmd_leader_election(args: argparse.Namespace) -> int:
    network = _build_network(args)
    sim = SINRSimulator(network)
    config = _config_for(args.preset)
    print(network.describe())
    result = elect_leader(sim, config=config)
    print(f"leader: {result.leader}")
    print(f"candidates: {sorted(result.candidates)}")
    print(f"probes: {result.probe_count()}")
    print(f"rounds: {result.rounds_used}")
    return 0


def _cmd_gadget(args: argparse.Namespace) -> int:
    params = lower_bound_parameters()
    network, layout = build_gadget(args.delta, params)
    fact1 = check_blocking_property(layout, network)
    fact2 = check_target_property(layout, network)
    algorithm = round_robin_algorithm(4 * (args.delta + 4))
    delivery = measure_gadget_delivery(
        algorithm, delta=args.delta, params=params, id_pool=list(range(2, 4 * (args.delta + 4)))
    )
    print(f"gadget with Delta={args.delta}: {layout.size} nodes, core span {layout.core_span():.3f}")
    print(f"fact 2.1 (two transmitters silence the right tail): {fact1}")
    print(f"fact 2.2 (target hears only a solo v_Delta+1): {fact2}")
    print(f"adversarial delivery round (round-robin strategy): {delivery.delivery_round}")
    print(f"Omega(Delta) bound satisfied: {delivery.delivery_round is None or delivery.delivery_round >= args.delta}")
    return 0 if fact1 and fact2 else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and documentation tools)."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Run the deterministic SINR clustering / broadcast algorithms on the simulator.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    cluster = subparsers.add_parser("cluster", help="build a 1-clustering (Algorithm 6)")
    _add_network_arguments(cluster)
    cluster.set_defaults(handler=_cmd_cluster)

    local = subparsers.add_parser("local-broadcast", help="run local broadcast (Algorithm 7)")
    _add_network_arguments(local)
    local.set_defaults(handler=_cmd_local_broadcast)

    global_ = subparsers.add_parser("global-broadcast", help="run global broadcast (Algorithm 8)")
    _add_network_arguments(global_)
    global_.add_argument("--source", type=int, default=None, help="source node ID (default: first node)")
    global_.set_defaults(handler=_cmd_global_broadcast)

    leader = subparsers.add_parser("leader-election", help="elect a leader (Theorem 5)")
    _add_network_arguments(leader)
    leader.set_defaults(handler=_cmd_leader_election)

    gadget = subparsers.add_parser("gadget", help="inspect the lower-bound gadget (Theorem 6)")
    gadget.add_argument("--delta", type=int, default=8, help="gadget degree parameter Delta")
    gadget.set_defaults(handler=_cmd_gadget)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
