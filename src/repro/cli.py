"""Command-line interface: run the paper's algorithms from a shell.

Every subcommand is a thin builder of a declarative
:class:`repro.api.RunSpec`: flags are translated into a spec, the spec is
executed by :func:`repro.api.run` (or :func:`repro.api.run_many` for
multi-seed ensembles) and the result is printed as a short report, e.g.::

    repro-sim cluster --deployment hotspots --nodes 48 --seed 7
    repro-sim local-broadcast --deployment uniform --nodes 40 --seeds 0,1,2,3
    repro-sim global-broadcast --deployment strip --hops 6
    repro-sim leader-election --deployment ring --nodes 30
    repro-sim cluster --deployment uniform --nodes 2000 --area 12 --backend lazy
    repro-sim dynamic --mobility waypoint --epochs 8 --crash-prob 0.02
    repro-sim gadget --delta 12
    repro-sim list
    repro-sim run --spec myrun.json --seeds 0,1,2,3
    repro-sim run --spec myrun.json --store results-store --seeds 0,1,2,3
    repro-sim store list --store results-store

(or ``python -m repro.cli ...``).  Valid ``--deployment``, ``--preset`` and
``--backend`` values come straight from the :mod:`repro.api` registries
(``repro-sim list`` prints them), so a plugin that registers a new scenario
is immediately drivable from the shell.  ``--dump-spec`` prints the spec a
command would run as JSON instead of executing it; ``repro-sim run``
executes such a JSON artifact.  All deployment/algorithm dispatch lives in
:mod:`repro.api` -- this module only translates flags.

``--store PATH`` on any run-style subcommand enables the content-addressed
result cache (:mod:`repro.store`): cached runs are loaded instead of
executed (``--cache refresh`` recomputes, ``--cache off`` ignores the
store), and ``repro-sim store list|show|verify|gc`` inspects and maintains
a store.  ``REPRO_STORE`` in the environment supplies the default path.

``repro-sim queue submit|worker|status|resume`` shards a sweep across
worker processes (or hosts sharing the store's filesystem) through the
store-backed work queue of :mod:`repro.distributed`: ``submit`` compiles a
declarative sweep file (``--dry-run`` prints the expanded grid), ``worker``
drains cells, ``status`` shows progress and leases, and ``resume`` finishes
an interrupted grid and merges the collection.

Multi-seed ``repro-sim run`` accepts the executor's per-cell failure
policy: ``--timeout SECONDS`` cancels hung cells, ``--retries N`` retries
crashed/failed cells with backoff, and ``--on-error skip|retry``
quarantines exhausted cells instead of aborting the ensemble.  Quarantined
seeds are summarized on stderr and exit the process with status 3 (status
1 remains "a correctness check failed", 2 "usage or store error").
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict, Optional, Sequence

from . import api
from .api import AlgorithmSpec, DeploymentSpec, DynamicsSpec, MobilitySpec, RunSpec
from .core import AlgorithmConfig


def _config_for(preset: str) -> AlgorithmConfig:
    """Deprecated shim: resolve a preset name via ``api.CONFIG_PRESETS``."""
    try:
        return api.CONFIG_PRESETS.get(preset)()
    except KeyError as exc:
        raise ValueError(str(exc)) from None


#: Flag -> builder-parameter translation per deployment kind.  This is pure
#: argparse plumbing; the builders themselves live in the DEPLOYMENTS registry.
_DEPLOYMENT_FLAGS = {
    "uniform": lambda args: {"nodes": args.nodes, "area": args.area},
    "hotspots": lambda args: {"nodes": args.nodes, "hotspots": args.hotspots},
    "strip": lambda args: {"hops": args.hops, "nodes_per_hop": args.nodes_per_hop},
    "line": lambda args: {"nodes": args.nodes},
    "ring": lambda args: {"nodes": args.nodes, "clusters": args.clusters},
    "grid": lambda args: {"rows": args.rows, "cols": args.cols},
    "ball": lambda args: {"nodes": args.nodes},
}


def _parse_round_batch(value: str) -> object:
    """argparse type for ``--round-batch``: an int >= 1 or the string 'auto'."""
    if value == "auto":
        return "auto"
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 1 or 'auto', got {value!r}"
        ) from None
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"expected an integer >= 1 or 'auto', got {value!r}")
    return parsed


def _deployment_spec(args: argparse.Namespace) -> DeploymentSpec:
    params = _DEPLOYMENT_FLAGS[args.deployment](args)
    backend_params: Dict[str, Any] = {}
    round_batch = getattr(args, "round_batch", None)
    if round_batch is not None:
        if args.backend != "spatial":
            raise SystemExit("--round-batch only applies to --backend spatial")
        backend_params["round_batch"] = round_batch
    return DeploymentSpec(
        args.deployment,
        params,
        seed=args.seed,
        backend=args.backend,
        backend_params=backend_params,
    )


def _run_spec(args: argparse.Namespace, algorithm: str, params: Optional[Dict[str, Any]] = None) -> RunSpec:
    return RunSpec(
        deployment=_deployment_spec(args),
        algorithm=AlgorithmSpec(algorithm, preset=args.preset, params=params),
    )


def _add_network_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deployment",
        choices=sorted(_DEPLOYMENT_FLAGS),
        default="uniform",
        help="deployment generator to use (see 'repro-sim list')",
    )
    parser.add_argument("--nodes", type=int, default=40, help="number of nodes (uniform/hotspots/line/ring/ball)")
    parser.add_argument("--area", type=float, default=3.0, help="side of the square area (uniform)")
    parser.add_argument("--hotspots", type=int, default=4, help="number of hotspots (hotspots)")
    parser.add_argument("--hops", type=int, default=5, help="number of hops (strip)")
    parser.add_argument("--nodes-per-hop", type=int, default=4, help="nodes per hop (strip)")
    parser.add_argument("--clusters", type=int, default=5, help="number of clusters (ring)")
    parser.add_argument("--rows", type=int, default=6, help="grid rows (grid)")
    parser.add_argument("--cols", type=int, default=6, help="grid columns (grid)")
    parser.add_argument("--seed", type=int, default=0, help="deployment seed")
    parser.add_argument(
        "--preset",
        choices=api.CONFIG_PRESETS.names(),
        default="fast",
        help="algorithm constants preset",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(api.BACKENDS),
        default="dense",
        help="physics backend: dense (O(n^2) gain matrix), lazy (O(n) memory) "
        "or spatial (grid-indexed, for large n)",
    )
    parser.add_argument(
        "--round-batch",
        type=_parse_round_batch,
        default=None,
        metavar="N|auto",
        help="spatial backend only: fuse N consecutive schedule rounds per "
        "evaluation ('auto' sizes batches adaptively; results are identical "
        "for every value)",
    )
    parser.add_argument(
        "--dump-spec",
        action="store_true",
        help="print the RunSpec JSON this command would execute, and exit",
    )


def _maybe_dump(args: argparse.Namespace, spec: RunSpec) -> bool:
    if getattr(args, "dump_spec", False):
        print(spec.to_json())
        return True
    return False


def _add_store_path_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=os.environ.get("REPRO_STORE"),
        metavar="PATH",
        help="the content-addressed result store at PATH "
        "(default: $REPRO_STORE if set)",
    )


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    _add_store_path_argument(parser)
    parser.add_argument(
        "--cache",
        choices=("reuse", "refresh", "off"),
        default="reuse",
        help="with --store: reuse cached results (default), recompute and "
        "overwrite (refresh), or ignore the store (off)",
    )


def _store_kwargs(args: argparse.Namespace) -> Dict[str, Any]:
    """``store=``/``cache=`` keyword arguments for the api entry points."""
    if getattr(args, "store", None):
        return {"store": args.store, "cache": args.cache}
    return {}


def _cmd_cluster(args: argparse.Namespace) -> int:
    spec = _run_spec(args, "cluster")
    if _maybe_dump(args, spec):
        return 0
    result = api.run(spec, **_store_kwargs(args))
    print(result.details["network"])
    print(f"clusters: {int(result.metrics['clusters'])}")
    print(f"rounds: {result.rounds['total']}")
    print(f"max cluster radius: {result.metrics['max_cluster_radius']:.2f}")
    print(f"max clusters per unit ball: {int(result.metrics['max_clusters_per_unit_ball'])}")
    print(f"valid clustering: {result.checks['valid_clustering']}")
    return 0 if result.checks["valid_clustering"] else 1


def _cmd_local_broadcast(args: argparse.Namespace) -> int:
    spec = _run_spec(args, "local-broadcast")
    if _maybe_dump(args, spec):
        return 0
    result = api.run(spec, **_store_kwargs(args))
    print(result.details["network"])
    print(f"rounds: {result.rounds['total']}")
    print(f"  clustering:   {result.rounds['clustering']}")
    print(f"  labeling:     {result.rounds['labeling']}")
    print(f"  transmission: {result.rounds['transmission']}")
    print(f"completed: {result.checks['completed']}")
    return 0 if result.checks["completed"] else 1


def _cmd_global_broadcast(args: argparse.Namespace) -> int:
    params: Dict[str, Any] = {}
    if args.source is not None:
        params["source"] = args.source
    spec = _run_spec(args, "global-broadcast", params)
    if _maybe_dump(args, spec):
        return 0
    result = api.run(spec, **_store_kwargs(args))
    print(result.details["network"])
    print(f"source: {result.details['source']}")
    print(f"phases: {int(result.metrics['phases'])}")
    print(f"rounds: {result.rounds['total']}")
    print(f"reached all nodes: {result.checks['reached_all']}")
    for phase in result.details["phases"]:
        print(
            f"  phase {phase['index']}: broadcasters={phase['broadcasters']} "
            f"newly_awakened={phase['newly_awakened']} rounds={phase['rounds_used']}"
        )
    return 0 if result.checks["reached_all"] else 1


def _cmd_leader_election(args: argparse.Namespace) -> int:
    spec = _run_spec(args, "leader-election")
    if _maybe_dump(args, spec):
        return 0
    result = api.run(spec, **_store_kwargs(args))
    print(result.details["network"])
    print(f"leader: {result.details['leader']}")
    print(f"candidates: {result.details['candidates']}")
    print(f"probes: {int(result.metrics['probes'])}")
    print(f"rounds: {result.rounds['total']}")
    return 0


def _dynamic_spec(args: argparse.Namespace) -> RunSpec:
    mobility_params: Dict[str, Any] = {}
    if args.mobility != "static":
        mobility_params["fraction"] = args.move_fraction
    events: Dict[str, Any] = {}
    if args.crash_prob > 0:
        events["crash_prob"] = args.crash_prob
    if args.join_prob > 0:
        events["join_prob"] = args.join_prob
    if args.sleep_prob > 0:
        events["sleep_prob"] = args.sleep_prob
    return RunSpec(
        deployment=_deployment_spec(args),
        algorithm=AlgorithmSpec(args.algorithm, preset=args.preset),
        dynamics=DynamicsSpec(
            mobility=MobilitySpec(args.mobility, mobility_params),
            epochs=args.epochs,
            events=events,
            seed=args.dynamics_seed,
        ),
    )


def _run_and_report_dynamic(
    spec: RunSpec, output: Optional[str], store_kwargs: Optional[Dict[str, Any]] = None
) -> int:
    trajectory = api.run_dynamic(spec, **(store_kwargs or {}))
    print(trajectory.table().render())
    summary = trajectory.summary()
    rounds = summary["rounds"].get("total", {})
    population = summary["population"]
    events = summary["events"]
    print(
        f"epochs: {summary['epochs']}  rounds min/mean/max: "
        f"{rounds.get('min')}/{rounds.get('mean'):.1f}/{rounds.get('max')}"
    )
    print(
        f"population min/final/max: "
        f"{population['min']}/{population['final']}/{population['max']}"
    )
    print(
        "events: "
        + " ".join(f"{key}={events[key]}" for key in ("moved", "crashed", "joined", "slept", "woke"))
    )
    print(f"all checks pass: {summary['all_checks_pass']}")
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(trajectory.to_json())
        print(f"wrote {output}")
    return 0 if summary["all_checks_pass"] else 1


def _cmd_dynamic(args: argparse.Namespace) -> int:
    spec = _dynamic_spec(args)
    if _maybe_dump(args, spec):
        return 0
    return _run_and_report_dynamic(spec, args.output, _store_kwargs(args))


def _cmd_gadget(args: argparse.Namespace) -> int:
    spec = RunSpec(
        deployment=DeploymentSpec("none"),
        algorithm=AlgorithmSpec("gadget", preset=args.preset, params={"delta": args.delta}),
    )
    if _maybe_dump(args, spec):
        return 0
    result = api.run(spec)
    print(
        f"gadget with Delta={args.delta}: {int(result.metrics['gadget_size'])} nodes, "
        f"core span {result.metrics['core_span']:.3f}"
    )
    print(f"fact 2.1 (two transmitters silence the right tail): {result.checks['blocking_property']}")
    print(f"fact 2.2 (target hears only a solo v_Delta+1): {result.checks['target_property']}")
    print(f"adversarial delivery round (round-robin strategy): {result.details['delivery_round']}")
    print(f"Omega(Delta) bound satisfied: {result.checks['omega_delta']}")
    return 0 if result.checks["blocking_property"] and result.checks["target_property"] else 1


def _cmd_list(args: argparse.Namespace) -> int:
    print("deployments:")
    for name in api.DEPLOYMENTS.names():
        builder = api.DEPLOYMENTS.get(name)
        doc = (builder.__doc__ or "").strip().splitlines()
        print(f"  {name:20s} {doc[0] if doc else ''}")
    print("algorithms:")
    for name in api.ALGORITHMS.names():
        entry = api.ALGORITHMS.get(name)
        flags = " [standalone]" if entry.standalone else ""
        print(f"  {name:20s} {entry.description}{flags}")
    print("mobility models:")
    for name in api.MOBILITY.names():
        factory = api.MOBILITY.get(name)
        doc = (factory.__doc__ or "").strip().splitlines()
        print(f"  {name:20s} {doc[0] if doc else ''}")
    print("physics backends:")
    for name in sorted(api.BACKENDS):
        doc = (api.BACKENDS[name].__doc__ or "").strip().splitlines()
        print(f"  {name:20s} {doc[0] if doc else ''}")
    print("config presets:")
    for name in api.CONFIG_PRESETS.names():
        print(f"  {name}")
    return 0


def _open_store(args: argparse.Namespace):
    """Open the store named by ``--store``/``REPRO_STORE`` for inspection."""
    from .store import ExperimentStore, StoreError

    path = getattr(args, "store", None)
    if not path:
        print(
            "error: no store given; pass --store PATH or set REPRO_STORE",
            file=sys.stderr,
        )
        return None
    if not os.path.isdir(path):
        print(f"error: no store at {path}", file=sys.stderr)
        return None
    try:
        return ExperimentStore(path)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _store_command(handler):
    """Wrap a store subcommand so StoreError prints cleanly, not as a traceback.

    ``StoreIntegrityError`` messages carry the recovery hint ('repro-sim
    store gc' / cache='refresh'); the inspection commands exist to diagnose
    damaged stores, so a raw traceback here would defeat their purpose.
    """

    def wrapped(args: argparse.Namespace) -> int:
        from .store import StoreError

        try:
            return handler(args)
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    return wrapped


@_store_command
def _cmd_store_list(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if store is None:
        return 2
    collection = getattr(args, "collection", None)
    if collection:
        try:
            member_keys = set(store.read_manifest(collection).get("keys", []))
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        entries = [m for m in store.entries() if m.get("key") in member_keys]
    else:
        entries = store.entries()
    if not entries:
        suffix = f" in collection {collection!r}" if collection else ""
        print(f"store at {store.root}: empty{suffix}")
        return 0
    limit = getattr(args, "limit", None)
    shown = entries if limit is None else entries[: max(0, limit)]
    scope = f" in collection {collection!r}" if collection else ""
    print(f"store at {store.root}: {len(entries)} entries{scope}")
    for manifest in shown:
        size = sum(meta.get("bytes", 0) for meta in manifest.get("files", {}).values())
        print(
            f"  {manifest['key'][:12]}  {manifest['kind']:6s}  "
            f"{manifest.get('label', '?'):44s}  {size:8,d} B"
        )
    if len(shown) < len(entries):
        print(f"  ... {len(entries) - len(shown)} more (raise --limit to see them)")
    if not collection:
        names = store.manifest_names()
        if names:
            print("collections:")
            for name in names:
                data = store.read_manifest(name)
                print(f"  {name}: {len(data.get('keys', []))} entries")
    return 0


@_store_command
def _cmd_store_verify(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if store is None:
        return 2
    report = store.verify_all()
    print(f"store at {store.root}: {report['checked']} entries checked, {report['ok']} ok")
    if not report["corrupt"]:
        print("integrity: ok")
        return 0
    print(f"corrupt entries: {len(report['corrupt'])}", file=sys.stderr)
    for key, message in sorted(report["corrupt"].items()):
        print(f"  {key[:12]}  {message}", file=sys.stderr)
    print(
        "nothing was deleted; 'repro-sim store gc' removes unreferenced corrupt "
        "entries, cache='refresh' recomputes them",
        file=sys.stderr,
    )
    return 1


@_store_command
def _cmd_store_show(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if store is None:
        return 2
    try:
        key = store.resolve_prefix(args.key)
        manifest = store.manifest(key)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"key:      {manifest['key']}")
    print(f"kind:     {manifest['kind']}")
    print(f"label:    {manifest.get('label', '?')}")
    print(f"package:  {manifest.get('package', '?')} (format {manifest.get('format', '?')})")
    for name, meta in sorted(manifest["files"].items()):
        print(f"file:     {name}  {meta.get('bytes', 0):,} B  sha256={meta.get('sha256', '?')[:16]}...")
    # get() checksums every file on load, so this one call is also the
    # integrity verdict (a second explicit verify would hash everything twice).
    loaded = store.get(key)
    print("integrity: ok")
    if manifest["kind"] == "run":
        for rounds_key, value in sorted(loaded.rounds.items()):
            print(f"rounds[{rounds_key}]: {value}")
        for check_key, value in sorted(loaded.checks.items()):
            print(f"check[{check_key}]: {value}")
    else:
        print(loaded.table().render())
    return 0


@_store_command
def _cmd_store_gc(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if store is None:
        return 2
    report = store.gc(prune_unreferenced=args.prune)
    print(f"removed corrupt entries: {len(report['removed_corrupt'])}")
    for key in report["removed_corrupt"]:
        print(f"  {key[:12]}")
    if report["corrupt_kept"]:
        print(f"corrupt but referenced by a collection (kept): {len(report['corrupt_kept'])}")
        for key in report["corrupt_kept"]:
            print(f"  {key[:12]}")
    if args.prune:
        print(f"pruned unreferenced entries: {len(report['pruned_unreferenced'])}")
    print(f"staging debris removed: {report['staging_debris']}")
    if report.get("staging_kept_live"):
        print(f"staging kept (live writers): {report['staging_kept_live']}")
    print(f"entries remaining: {report['remaining']}")
    return 0


def _queue_command(handler):
    """Wrap a queue subcommand so queue/sweep/store errors print cleanly."""

    def wrapped(args: argparse.Namespace) -> int:
        from .distributed import QueueError, SweepFileError
        from .store import StoreError

        try:
            return handler(args)
        except (QueueError, SweepFileError, StoreError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    return wrapped


def _spec_grid_line(index: int, key: str, spec: RunSpec) -> str:
    """One human-readable row of an expanded sweep grid."""
    tags = spec.tag_dict()
    tag_text = " ".join(f"{k}={v}" for k, v in sorted(tags.items()))
    params = " ".join(f"{k}={v}" for k, v in sorted(spec.deployment.param_dict().items()))
    return (
        f"  [{index:4d}] {key[:12]}  {spec.algorithm.name} on {spec.deployment.kind}"
        f"({params}) seed={spec.seed}" + (f"  {tag_text}" if tag_text else "")
    )


@_queue_command
def _cmd_queue_submit(args: argparse.Namespace) -> int:
    from .distributed import submit_grid
    from .distributed.sweepfile import load_sweep_file
    from .store import hashing

    sweep = load_sweep_file(args.sweep_file)
    name = args.name or sweep.name
    keys = [hashing.spec_key(spec) for spec in sweep.specs]
    print(f"sweep {name!r}: {len(sweep)} cells ({sweep.axis_summary()})")
    if args.dry_run:
        for index, (key, spec) in enumerate(zip(keys, sweep.specs)):
            print(_spec_grid_line(index, key, spec))
        print("dry run: nothing submitted")
        return 0
    path = getattr(args, "store", None)
    if not path:
        print("error: no store given; pass --store PATH or set REPRO_STORE", file=sys.stderr)
        return 2
    from .store import ExperimentStore

    store = ExperimentStore(path)  # submit creates the store when missing
    report = submit_grid(
        store, name, sweep.specs, lease_timeout=args.lease_timeout, force=args.force
    )
    print(report.summary_line())
    print(
        f"start workers with: repro-sim queue worker --store {store.root} --name {report.name}"
    )
    return 0


@_queue_command
def _cmd_queue_worker(args: argparse.Namespace) -> int:
    from .distributed import QueueWorker

    store = _open_store(args)
    if store is None:
        return 2
    worker = QueueWorker(
        store,
        args.name,
        worker_id=args.worker_id,
        retries=args.retries,
        poll_interval=args.poll,
        cell_timeout=args.cell_timeout,
        max_cells=args.max_cells,
    )
    report = worker.work()
    print(report.summary_line())
    return 0 if report.failed == 0 else 3


@_queue_command
def _cmd_queue_status(args: argparse.Namespace) -> int:
    from .distributed import queue_status

    store = _open_store(args)
    if store is None:
        return 2
    if getattr(args, "json", False):
        import json as _json

        # Machine-readable twin of the text report below; the service's
        # /stats endpoint serves the same queue_status() snapshot, so
        # monitors can consume either interchangeably.
        if args.name:
            snapshot: Dict[str, Any] = queue_status(store, args.name)
        else:
            snapshot = {"queues": queue_status(store)}
        snapshot["store"] = str(store.root)
        print(_json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    if not args.name:
        snapshot = queue_status(store)
        if not snapshot:
            print(f"store at {store.root}: no work queues")
            return 0
        for queue_name, counts in sorted(snapshot.items()):
            print(
                f"  {queue_name}: {counts['done']}/{counts['total']} done, "
                f"{counts['leased']} leased, {counts['pending']} pending, "
                f"{counts['failed']} failed"
            )
        return 0
    status = queue_status(store, args.name)
    counts = status["counts"]
    print(
        f"queue {status['name']!r}: {counts['done']}/{counts['total']} done, "
        f"{counts['leased']} leased ({counts['stale']} stale), "
        f"{counts['pending']} pending, {counts['failed']} failed"
    )
    for key, lease in sorted(status["leases"].items()):
        state = "STALE" if lease["stale"] else "live"
        print(
            f"  lease {key[:12]}  {lease.get('worker', '?')} "
            f"(pid {lease.get('pid', '?')} on {lease.get('host', '?')}, "
            f"beat {lease['age']:.1f}s ago, attempt {lease.get('attempts', '?')}) [{state}]"
        )
    for line in status["failures"]:
        print(f"  failed: {line}", file=sys.stderr)
    print(f"complete: {status['complete']}")
    return 0


@_queue_command
def _cmd_queue_resume(args: argparse.Namespace) -> int:
    from .distributed import WorkQueue, merge_collection, spawn_local_workers, wait_for_completion

    store = _open_store(args)
    if store is None:
        return 2
    queue = WorkQueue(store, args.name)
    if args.retry_failed:
        cleared = queue.requeue_failed()
        if cleared:
            print(f"requeued {cleared} quarantined cell(s)")
    counts = queue.counts()
    remaining = counts["pending"] + counts["leased"] + counts["stale"]
    if remaining:
        workers = spawn_local_workers(store.root, args.name, args.workers) if args.workers else []
        print(f"{remaining} unsettled cell(s); {len(workers)} local worker(s) started")
        wait_for_completion(
            store, args.name, timeout=args.timeout,
            workers=workers or None, respawn=args.workers,
        )
    results = merge_collection(store, args.name, collection=args.collection)
    failed = [r for r in results if getattr(r, "failed", False)]
    collection = args.collection or f"queue-{args.name}"
    print(f"merged {len(results)} cell(s) into collection {collection!r}")
    if failed:
        print(f"quarantined cells: {len(failed)}", file=sys.stderr)
        for failure in failed:
            print(f"  {failure.summary_line()}", file=sys.stderr)
        return 3
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import ServiceConfig, SimulationService

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        store=args.store or None,
        cache=args.cache,
        max_workers=args.workers,
        queue_limit=args.queue_limit,
        timeout=args.timeout,
        retries=args.retries,
        max_sessions=args.max_sessions,
    )

    async def serve() -> None:
        service = SimulationService(config)
        await service.start()
        store_note = f"store {args.store}" if args.store else "no store (nothing persisted)"
        print(f"simulation service listening on http://{args.host}:{service.port} ({store_note})")
        print("endpoints: /health /stats /run /validate /sessions  -- Ctrl-C to stop")
        try:
            await asyncio.Event().wait()  # serve until interrupted
        finally:
            await service.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("service stopped")
    return 0


def _parse_seeds(text: str) -> list:
    # Shared with the sweep-file 'seeds' field: comma/space lists of
    # integers and start:stop[:step] ranges, e.g. "0,1,2", "0:32", "0:64:2".
    from .distributed.sweepfile import parse_seed_spec

    return parse_seed_spec(text)


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.spec, "r", encoding="utf-8") as handle:
        spec = RunSpec.from_json(handle.read())
    seeds = _parse_seeds(args.seeds) if args.seeds else None
    if spec.dynamics is not None:
        # Dynamic scenarios run their epoch loop, not the static executor.
        if seeds and len(seeds) > 1:
            print("error: a dynamic spec runs one trajectory; pass at most one seed", file=sys.stderr)
            return 2
        if seeds:
            spec = spec.with_seed(seeds[0])
        return _run_and_report_dynamic(spec, args.output, _store_kwargs(args))
    if seeds and len(seeds) > 1:
        runset = api.run_many(
            spec, seeds=seeds, parallel=not args.serial,
            timeout=args.timeout, retries=args.retries, on_error=args.on_error,
            **_store_kwargs(args),
        )
        if runset.results:
            print(runset.table().render())
            summary = runset.summary()
            rounds = summary["rounds"].get("total", {})
            print(
                f"seeds: {len(runset)}  rounds min/mean/max: "
                f"{rounds.get('min')}/{rounds.get('mean'):.1f}/{rounds.get('max')}"
            )
        print(f"all checks pass: {runset.all_checks_pass()}")
        if runset.failures:
            print(f"quarantined seeds: {len(runset.failures)}", file=sys.stderr)
            for failure in runset.failures:
                print(f"  {failure.summary_line()}", file=sys.stderr)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(runset.to_json())
            print(f"wrote {args.output}")
        if runset.failures:
            return 3
        return 0 if runset.all_checks_pass() else 1
    if seeds:
        spec = spec.with_seed(seeds[0])
    result = api.run(spec, **_store_kwargs(args))
    if result.cached:
        print("(loaded from store)")
    if "network" in result.details:
        print(result.details["network"])
    for key, value in sorted(result.rounds.items()):
        print(f"rounds[{key}]: {value}")
    for key, value in sorted(result.checks.items()):
        print(f"check[{key}]: {value}")
    if args.output:
        import json as _json

        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(_json.dumps(result.to_dict(), indent=2, sort_keys=True))
        print(f"wrote {args.output}")
    return 0 if result.all_checks_pass() else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and documentation tools)."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Run the deterministic SINR clustering / broadcast algorithms on the simulator.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    cluster = subparsers.add_parser("cluster", help="build a 1-clustering (Algorithm 6)")
    _add_network_arguments(cluster)
    _add_store_arguments(cluster)
    cluster.set_defaults(handler=_cmd_cluster)

    local = subparsers.add_parser("local-broadcast", help="run local broadcast (Algorithm 7)")
    _add_network_arguments(local)
    _add_store_arguments(local)
    local.set_defaults(handler=_cmd_local_broadcast)

    global_ = subparsers.add_parser("global-broadcast", help="run global broadcast (Algorithm 8)")
    _add_network_arguments(global_)
    _add_store_arguments(global_)
    global_.add_argument("--source", type=int, default=None, help="source node ID (default: first node)")
    global_.set_defaults(handler=_cmd_global_broadcast)

    leader = subparsers.add_parser("leader-election", help="elect a leader (Theorem 5)")
    _add_network_arguments(leader)
    _add_store_arguments(leader)
    leader.set_defaults(handler=_cmd_leader_election)

    dynamic = subparsers.add_parser(
        "dynamic", help="run an algorithm across epochs of a time-varying network"
    )
    _add_network_arguments(dynamic)
    dynamic.add_argument(
        "--algorithm",
        choices=[name for name in api.ALGORITHMS.names() if not api.ALGORITHMS.get(name).standalone],
        default="cluster",
        help="algorithm re-run on every epoch",
    )
    dynamic.add_argument(
        "--mobility",
        choices=api.MOBILITY.names(),
        default="waypoint",
        help="mobility model advancing positions each epoch (see 'repro-sim list')",
    )
    dynamic.add_argument("--epochs", type=int, default=6, help="number of epochs to simulate")
    dynamic.add_argument(
        "--move-fraction",
        type=float,
        default=1.0,
        help="fraction of nodes moved per epoch (non-static mobility models)",
    )
    dynamic.add_argument("--crash-prob", type=float, default=0.0, help="per-node crash probability per epoch")
    dynamic.add_argument("--join-prob", type=float, default=0.0, help="expected joins per node per epoch")
    dynamic.add_argument(
        "--sleep-prob", type=float, default=0.0, help="per-node duty-cycle sleep probability per epoch"
    )
    dynamic.add_argument(
        "--dynamics-seed", type=int, default=0, help="seed of the mobility/churn process (independent of --seed)"
    )
    dynamic.add_argument("--output", default=None, help="write the EpochSet JSON to this path")
    _add_store_arguments(dynamic)
    dynamic.set_defaults(handler=_cmd_dynamic)

    gadget = subparsers.add_parser("gadget", help="inspect the lower-bound gadget (Theorem 6)")
    gadget.add_argument("--delta", type=int, default=8, help="gadget degree parameter Delta")
    gadget.add_argument(
        "--preset",
        choices=api.CONFIG_PRESETS.names(),
        default="fast",
        help="algorithm constants preset",
    )
    gadget.add_argument("--dump-spec", action="store_true", help="print the RunSpec JSON and exit")
    gadget.set_defaults(handler=_cmd_gadget)

    list_ = subparsers.add_parser(
        "list", help="list registered deployments, algorithms, backends and presets"
    )
    list_.set_defaults(handler=_cmd_list)

    run_ = subparsers.add_parser("run", help="execute a RunSpec JSON artifact")
    run_.add_argument("--spec", required=True, help="path to a RunSpec JSON file")
    run_.add_argument(
        "--seeds", default=None, help="comma-separated seeds; more than one runs a parallel ensemble"
    )
    run_.add_argument("--serial", action="store_true", help="disable the process-pool fan-out")
    run_.add_argument("--output", default=None, help="write the result JSON to this path")
    run_.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock timeout; a hung cell is cancelled and its "
        "worker recycled (parallel ensembles only)",
    )
    run_.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="re-run a failed/crashed/timed-out cell up to N times with backoff",
    )
    run_.add_argument(
        "--on-error",
        choices=api.ON_ERROR_POLICIES,
        default="raise",
        help="after retries are exhausted: abort the ensemble (raise, default) "
        "or quarantine the cell and keep going (skip = no retries, retry)",
    )
    _add_store_arguments(run_)
    run_.set_defaults(handler=_cmd_run)

    store_ = subparsers.add_parser(
        "store", help="inspect and maintain a content-addressed result store"
    )
    store_sub = store_.add_subparsers(dest="store_command", required=True)

    store_list = store_sub.add_parser("list", help="list stored entries and collections")
    store_list.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="print at most N entries (oldest first; the total is always shown)",
    )
    store_list.add_argument(
        "--collection", default=None, metavar="NAME",
        help="only list entries referenced by the named collection manifest",
    )
    _add_store_path_argument(store_list)
    store_list.set_defaults(handler=_cmd_store_list)

    store_verify = store_sub.add_parser(
        "verify", help="re-check every entry's checksums; report (never delete) corruption"
    )
    _add_store_path_argument(store_verify)
    store_verify.set_defaults(handler=_cmd_store_verify)

    store_show = store_sub.add_parser("show", help="verify and print one stored entry")
    store_show.add_argument("key", help="entry key (any unambiguous prefix)")
    _add_store_path_argument(store_show)
    store_show.set_defaults(handler=_cmd_store_show)

    store_gc = store_sub.add_parser(
        "gc", help="remove corrupt/staging debris (and optionally unreferenced entries)"
    )
    store_gc.add_argument(
        "--prune",
        action="store_true",
        help="also delete healthy entries not referenced by any collection manifest",
    )
    _add_store_path_argument(store_gc)
    store_gc.set_defaults(handler=_cmd_store_gc)

    queue_ = subparsers.add_parser(
        "queue", help="distributed sweep execution: a store-backed work queue"
    )
    queue_sub = queue_.add_subparsers(dest="queue_command", required=True)

    queue_submit = queue_sub.add_parser(
        "submit", help="compile a sweep file and submit its grid as a work queue"
    )
    queue_submit.add_argument(
        "--sweep-file", required=True, metavar="PATH",
        help="declarative sweep file (.yaml/.yml/.json) describing the grid",
    )
    queue_submit.add_argument(
        "--name", default=None,
        help="queue name (default: the sweep file's 'name' field, else its stem)",
    )
    queue_submit.add_argument(
        "--dry-run", action="store_true",
        help="print the fully expanded spec grid and submit nothing",
    )
    queue_submit.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="SECONDS",
        help="heartbeat age after which a worker's lease is considered stale "
        "and its cell reclaimed (default 30)",
    )
    queue_submit.add_argument(
        "--force", action="store_true",
        help="replace an existing queue of the same name holding a different grid",
    )
    _add_store_path_argument(queue_submit)
    queue_submit.set_defaults(handler=_cmd_queue_submit)

    queue_worker = queue_sub.add_parser(
        "worker", help="run one worker process against a submitted queue"
    )
    queue_worker.add_argument("--name", required=True, help="the queue to drain")
    queue_worker.add_argument(
        "--worker-id", default=None, help="worker identity in leases (default: host-pid)"
    )
    queue_worker.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="in-lease retries per cell before it is quarantined (default 2)",
    )
    queue_worker.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="idle poll interval while other workers hold the remaining cells",
    )
    queue_worker.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="stop heartbeating a cell after this long, letting another worker "
        "reclaim it (the distributed analogue of --timeout)",
    )
    queue_worker.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="exit after claiming N cells (default: run until the grid settles)",
    )
    _add_store_path_argument(queue_worker)
    queue_worker.set_defaults(handler=_cmd_queue_worker)

    queue_status_ = queue_sub.add_parser(
        "status", help="progress, live/stale leases and failures of the store's queues"
    )
    queue_status_.add_argument(
        "--name", default=None, help="one queue in detail (default: summarize all)"
    )
    queue_status_.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON instead of the text report (the same "
        "snapshot the service's /stats endpoint serves)",
    )
    _add_store_path_argument(queue_status_)
    queue_status_.set_defaults(handler=_cmd_queue_status)

    queue_resume = queue_sub.add_parser(
        "resume", help="drain an interrupted queue with local workers and merge the collection"
    )
    queue_resume.add_argument("--name", required=True, help="the queue to finish")
    queue_resume.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="local worker processes to start (0 = merge only; default 2)",
    )
    queue_resume.add_argument(
        "--no-retry-failed", dest="retry_failed", action="store_false",
        help="keep quarantined cells quarantined instead of requeueing them",
    )
    queue_resume.add_argument(
        "--collection", default=None,
        help="merged collection manifest name (default: queue-<name>)",
    )
    queue_resume.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="give up if the grid has not settled after this long",
    )
    _add_store_path_argument(queue_resume)
    queue_resume.set_defaults(handler=_cmd_queue_resume)

    serve = subparsers.add_parser(
        "serve",
        help="run the simulation service: persistent sessions, cached runs, "
        "streamed dynamic trajectories over HTTP",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8642,
        help="TCP port (default 8642; 0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--cache", choices=("reuse", "refresh", "off"), default="reuse",
        help="store cache policy for service runs (default reuse)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="worker threads executing simulations (default 4)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=32, metavar="N",
        help="admitted requests beyond which the service sheds load with "
        "429 + Retry-After (default 32)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="default per-request execution budget (default: unbounded; "
        "clients may override per request)",
    )
    serve.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="default in-service retries before a request is quarantined "
        "as a FailedResult (default 0)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=64, metavar="N",
        help="capacity of the named-session table (default 64)",
    )
    _add_store_path_argument(serve)
    serve.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
