"""Generate the docs-site API reference from the package's docstrings.

Walks the public surface of the documented modules (``__all__`` where
defined, public top-level names otherwise) with :mod:`inspect` and writes
one Markdown page per module into ``docs/reference/``.  Sphinx-style roles
in docstrings (``:class:`~repro.api.RunSpec```, ``:func:`run``` ...) are
rewritten to plain code spans so the pages render cleanly under MkDocs.

The generated pages are committed; CI (and ``tests/test_docs.py``) run
``--check`` to fail loudly when the docstrings and the committed pages
drift apart.

Usage::

    PYTHONPATH=src python scripts/gen_api_reference.py          # (re)write pages
    PYTHONPATH=src python scripts/gen_api_reference.py --check  # verify freshness
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REFERENCE_DIR = REPO_ROOT / "docs" / "reference"

#: module name -> (page file name, one-line blurb for the index page).
MODULES = {
    "repro.api": (
        "api.md",
        "Declarative specs, registries and the parallel executor -- the front door.",
    ),
    "repro.store": (
        "store.md",
        "Content-addressed experiment store: canonical hashing, cached artifacts, GC.",
    ),
    "repro.dynamics": (
        "dynamics.md",
        "Time-varying networks: mobility models, churn timelines, the epoch runner.",
    ),
    "repro.sinr.network": (
        "sinr-network.md",
        "WirelessNetwork: placement, IDs, communication graph, the mutation API.",
    ),
    "repro.experiments.sweeps": (
        "sweeps.md",
        "Parameter-sweep runners assembling RunSpec grids over the executor.",
    ),
    "repro.distributed": (
        "distributed.md",
        "Distributed sweep orchestration: work queue, workers, coordinator, sweep files.",
    ),
    "repro.service": (
        "service.md",
        "Simulation-as-a-service: the asyncio HTTP server, sessions and the client.",
    ),
    "repro.testing.faults": (
        "testing-faults.md",
        "Seeded fault injection: deterministic chaos plans for robustness tests.",
    ),
    "repro.analysis.reporting": (
        "reporting.md",
        "ExperimentTable rendering and loaders that build tables from stored artifacts.",
    ),
}

_ROLE = re.compile(r":(?:class|func|meth|mod|data|attr|exc|obj):`~?([^`<>]+)`")


def clean_doc(doc: str) -> str:
    """Docstring -> Markdown: resolve roles, normalize literals."""
    text = _ROLE.sub(lambda m: "`" + m.group(1).split(".")[-1] + "`", doc)
    text = text.replace("``", "`")
    # reST literal-block markers: the indented block that follows already
    # renders as a Markdown code block; drop the dangling second colon.
    text = re.sub(r"::$", ":", text, flags=re.MULTILINE)
    return text.strip()


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def public_members(module):
    """The module's documented surface, in a stable (declaration-ish) order."""
    names = getattr(module, "__all__", None)
    if names is None:
        names = [
            name
            for name, value in vars(module).items()
            if not name.startswith("_")
            and (inspect.isclass(value) or inspect.isfunction(value))
            and getattr(value, "__module__", "") == module.__name__
        ]
    members = []
    for name in names:
        value = getattr(module, name, None)
        if value is None or inspect.ismodule(value):
            continue
        members.append((name, value))
    classes = [(n, v) for n, v in members if inspect.isclass(v)]
    functions = [(n, v) for n, v in members if inspect.isfunction(v)]
    data = [
        (n, v)
        for n, v in members
        if not inspect.isclass(v) and not inspect.isfunction(v)
    ]
    return classes, functions, data


def render_class(name: str, cls) -> list:
    lines = [f"## `{name}`", ""]
    if not inspect.isabstract(cls) and cls.__init__ is not object.__init__:
        lines += [f"```python\n{name}{signature_of(cls)}\n```", ""]
    doc = inspect.getdoc(cls)
    if doc:
        lines += [clean_doc(doc), ""]
    # Properties first, then public methods, declaration order per class.
    properties = []
    methods = []
    for attr_name, attr in vars(cls).items():
        if attr_name.startswith("_"):
            continue
        if isinstance(attr, property):
            properties.append((attr_name, attr))
        elif inspect.isfunction(attr) or isinstance(attr, (classmethod, staticmethod)):
            methods.append((attr_name, attr))
    if properties:
        lines += ["**Properties:**", ""]
        for attr_name, attr in properties:
            doc = inspect.getdoc(attr) or ""
            summary = clean_doc(doc).splitlines()[0] if doc else ""
            lines.append(f"- `{attr_name}` -- {summary}" if summary else f"- `{attr_name}`")
        lines.append("")
    for attr_name, attr in methods:
        fn = attr.__func__ if isinstance(attr, (classmethod, staticmethod)) else attr
        kind = ""
        if isinstance(attr, classmethod):
            kind = " *(classmethod)*"
        elif isinstance(attr, staticmethod):
            kind = " *(staticmethod)*"
        lines += [f"### `{name}.{attr_name}{signature_of(fn)}`{kind}", ""]
        doc = inspect.getdoc(fn)
        if doc:
            lines += [clean_doc(doc), ""]
    return lines


def render_function(name: str, fn) -> list:
    lines = [f"## `{name}{signature_of(fn)}`", ""]
    doc = inspect.getdoc(fn)
    if doc:
        lines += [clean_doc(doc), ""]
    return lines


def render_module(module_name: str) -> str:
    module = importlib.import_module(module_name)
    lines = [
        "<!-- Generated by scripts/gen_api_reference.py -- do not edit by hand. -->",
        "",
        f"# `{module_name}`",
        "",
    ]
    doc = inspect.getdoc(module)
    if doc:
        lines += [clean_doc(doc), ""]
    classes, functions, data = public_members(module)
    if data:
        lines += ["## Module data", ""]
        for name, value in data:
            summary = type(value).__name__
            if hasattr(value, "kind"):  # the Registry instances
                summary = f"`Registry({value.kind!r})` with entries: " + ", ".join(
                    f"`{entry}`" for entry in value.names()
                )
            lines.append(f"- `{name}` -- {summary}")
        lines.append("")
    for name, fn in functions:
        lines += render_function(name, fn)
    for name, cls in classes:
        lines += render_class(name, cls)
    return "\n".join(lines).rstrip() + "\n"


def render_index() -> str:
    lines = [
        "<!-- Generated by scripts/gen_api_reference.py -- do not edit by hand. -->",
        "",
        "# API reference",
        "",
        "Generated from the package docstrings by `scripts/gen_api_reference.py`",
        "(re-run it after changing a docstring; CI fails if the pages drift).",
        "",
    ]
    for module_name, (page, blurb) in MODULES.items():
        lines.append(f"- [`{module_name}`]({page}) -- {blurb}")
    return "\n".join(lines) + "\n"


def generate() -> dict:
    pages = {"index.md": render_index()}
    for module_name, (page, _) in MODULES.items():
        pages[page] = render_module(module_name)
    return pages


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="verify the committed pages match the docstrings; write nothing",
    )
    args = parser.parse_args()

    sys.path.insert(0, str(REPO_ROOT / "src"))
    pages = generate()
    stale = []
    REFERENCE_DIR.mkdir(parents=True, exist_ok=True)
    for name, content in pages.items():
        path = REFERENCE_DIR / name
        if args.check:
            if not path.exists() or path.read_text(encoding="utf-8") != content:
                stale.append(name)
        else:
            path.write_text(content, encoding="utf-8")
            print(f"wrote {path.relative_to(REPO_ROOT)}")
    if args.check:
        if stale:
            print(
                "stale API reference pages (re-run scripts/gen_api_reference.py): "
                + ", ".join(stale),
                file=sys.stderr,
            )
            return 1
        print(f"API reference is fresh ({len(pages)} pages)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
